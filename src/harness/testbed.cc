#include "harness/testbed.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "harness/bench_flags.h"
#include "sim/check.h"
#include "workload/runner.h"

namespace zstor {

namespace {

/// Field-wise sum of every device's command counters, for the aggregated
/// snapshot of a striped testbed.
zns::ZnsCounters SumCounters(const std::vector<zns::ZnsDevice*>& devs) {
  zns::ZnsCounters t;
  for (const auto* d : devs) {
    const zns::ZnsCounters& c = d->counters();
    t.reads += c.reads;
    t.flushes += c.flushes;
    t.zone_reports += c.zone_reports;
    t.zones_worn_offline += c.zones_worn_offline;
    t.writes += c.writes;
    t.appends += c.appends;
    t.explicit_opens += c.explicit_opens;
    t.implicit_opens += c.implicit_opens;
    t.implicit_open_evictions += c.implicit_open_evictions;
    t.closes += c.closes;
    t.finishes += c.finishes;
    t.resets += c.resets;
    t.bytes_written += c.bytes_written;
    t.bytes_read += c.bytes_read;
    t.host_rejects += c.host_rejects;
    t.media_errors += c.media_errors;
    t.read_faults += c.read_faults;
    t.write_faults += c.write_faults;
    t.retired_blocks += c.retired_blocks;
    t.zones_degraded_readonly += c.zones_degraded_readonly;
    t.zones_failed_offline += c.zones_failed_offline;
    t.spare_blocks_used += c.spare_blocks_used;
    t.zone_transitions += c.zone_transitions;
    t.crashes += c.crashes;
    t.recoveries += c.recoveries;
    t.torn_pages += c.torn_pages;
    t.crash_lost_bytes += c.crash_lost_bytes;
    t.recovery_zone_scans += c.recovery_zone_scans;
    t.recovery_ns_total += c.recovery_ns_total;
    t.reset_drops += c.reset_drops;
  }
  return t;
}

nand::FlashCounters SumFlashCounters(const std::vector<zns::ZnsDevice*>& devs) {
  nand::FlashCounters t;
  for (auto* d : devs) {
    if (d->flash() == nullptr) continue;
    const nand::FlashCounters& c = d->flash()->counters();
    t.page_reads += c.page_reads;
    t.page_programs += c.page_programs;
    t.block_erases += c.block_erases;
    t.bytes_read += c.bytes_read;
    t.bytes_programmed += c.bytes_programmed;
    t.read_retries += c.read_retries;
    t.read_errors += c.read_errors;
    t.program_failures += c.program_failures;
    t.blocks_retired += c.blocks_retired;
    t.recovery_probes += c.recovery_probes;
    t.crash_discarded_pages += c.crash_discarded_pages;
  }
  return t;
}

/// Adds `b`'s activity into `a` (the SMART union of a striped set).
void AccumulateSmart(nvme::SmartLog& a, const nvme::SmartLog& b) {
  a.host_reads += b.host_reads;
  a.host_writes += b.host_writes;
  a.bytes_read += b.bytes_read;
  a.bytes_written += b.bytes_written;
  a.host_rejects += b.host_rejects;
  a.media_errors += b.media_errors;
  a.read_faults += b.read_faults;
  a.write_faults += b.write_faults;
  a.retired_blocks += b.retired_blocks;
  a.spare_blocks_used += b.spare_blocks_used;
  a.spare_blocks_total += b.spare_blocks_total;
  a.media_read_retries += b.media_read_retries;
  a.media_page_reads += b.media_page_reads;
  a.media_page_programs += b.media_page_programs;
  a.media_block_erases += b.media_block_erases;
  a.media_bytes_read += b.media_bytes_read;
  a.media_bytes_programmed += b.media_bytes_programmed;
  a.zone_resets += b.zone_resets;
  a.zone_finishes += b.zone_finishes;
  a.zone_explicit_opens += b.zone_explicit_opens;
  a.zone_implicit_opens += b.zone_implicit_opens;
  a.zone_closes += b.zone_closes;
  a.zone_transitions += b.zone_transitions;
  a.zones_worn_offline += b.zones_worn_offline;
  a.zones_degraded_readonly += b.zones_degraded_readonly;
  a.zones_failed_offline += b.zones_failed_offline;
  a.gc_invocations += b.gc_invocations;
  a.gc_units_migrated += b.gc_units_migrated;
  a.gc_blocks_erased += b.gc_blocks_erased;
}

/// Raw pointers to every counter-bearing layer. The layers are all
/// heap-allocated, so these stay valid across Testbed moves — which is
/// why the sampler's refresh closure captures a copy of this struct and
/// never `this` (a moved-from Testbed would dangle).
struct LayerPtrs {
  std::vector<zns::ZnsDevice*> zns;
  ftl::ConvDevice* conv = nullptr;
  hostif::KernelStack* kernel = nullptr;
  hostif::StripedStack* striped = nullptr;
  fault::FaultPlan* faults = nullptr;
  hostif::ResilientStack* resilient = nullptr;
};

/// Batch-exports every layer's counters into the registry. With
/// `per_lane` (a timeline on a striped testbed), additionally exports
/// `laneN.zns.*` counters so timeline samples can attribute throughput
/// to individual stripe lanes; plain --metrics snapshots keep the
/// aggregate-only view.
void DescribeLayers(const LayerPtrs& l, telemetry::MetricsRegistry& m,
                    bool per_lane) {
  if (!l.zns.empty()) {
    // One device exports its counters directly; a striped set exports the
    // field-wise sums (still under the usual "zns."/"nand." names).
    SumCounters(l.zns).Describe(m);
    SumFlashCounters(l.zns).Describe(m);
    if (per_lane && l.zns.size() > 1) {
      for (std::size_t d = 0; d < l.zns.size(); ++d) {
        const zns::ZnsCounters& c = l.zns[d]->counters();
        const std::string p = "lane" + std::to_string(d) + ".zns.";
        m.GetCounter(p + "bytes_written").Set(c.bytes_written);
        m.GetCounter(p + "bytes_read").Set(c.bytes_read);
        m.GetCounter(p + "appends").Set(c.appends);
        m.GetCounter(p + "resets").Set(c.resets);
      }
    }
  }
  if (l.conv != nullptr) {
    l.conv->counters().Describe(m);
    l.conv->flash().counters().Describe(m);
  }
  if (l.kernel != nullptr) l.kernel->scheduler_stats().Describe(m);
  if (l.striped != nullptr) l.striped->stats().Describe(m);
  if (l.faults != nullptr) l.faults->counters().Describe(m);
  if (l.resilient != nullptr) l.resilient->stats().Describe(m);
}

/// Field-wise sum of the parallel engine's per-device fault plans, for
/// the aggregated "fault." export (classic mode shares one plan instead).
fault::FaultCounters SumFaultCounters(
    const std::vector<std::unique_ptr<fault::FaultPlan>>& plans) {
  fault::FaultCounters t;
  for (const auto& p : plans) {
    const fault::FaultCounters& c = p->counters();
    t.correctable_read_errors += c.correctable_read_errors;
    t.uncorrectable_read_errors += c.uncorrectable_read_errors;
    t.program_failures += c.program_failures;
    t.read_retry_steps += c.read_retry_steps;
    t.scheduled_fired += c.scheduled_fired;
    t.wear_boosted_ops += c.wear_boosted_ops;
  }
  return t;
}

/// Decides which lane each worker of `spec` runs in under the parallel
/// engine: index 0 = coordinator, 1 + d = device d's lane. A worker is
/// sharded to a device lane only when every zone it can touch lives on
/// that one device; whole-job properties that need shared host-side
/// state — a rate limiter, the retry layer, an explicit worker_ids list,
/// or an opcode that broadcasts/gathers — pin the entire job to the
/// coordinator. The decision depends only on the spec and the stripe
/// map, never on the thread count, so every lane's event schedule is
/// identical for any --sim-threads value.
std::vector<std::vector<std::uint32_t>> PlanShards(
    const workload::JobSpec& spec, const nvme::NamespaceInfo& info,
    const hostif::StripeMap& map, bool has_resilient) {
  std::vector<std::vector<std::uint32_t>> plan(1 + map.num_devices);
  const bool pinned =
      has_resilient || spec.rate_bytes_per_sec > 0 ||
      !spec.worker_ids.empty() ||
      (spec.op != nvme::Opcode::kRead && spec.op != nvme::Opcode::kWrite &&
       spec.op != nvme::Opcode::kAppend &&
       spec.op != nvme::Opcode::kZoneMgmtSend);
  // Resolve the zone list the way Job's constructor does, so per-worker
  // slices match the slices the sharded Jobs will compute.
  std::vector<std::uint32_t> zones = spec.zones;
  if (zones.empty()) {
    zones.reserve(info.num_zones);
    for (std::uint32_t z = 0; z < info.num_zones; ++z) zones.push_back(z);
  }
  for (std::uint32_t w = 0; w < spec.workers; ++w) {
    std::uint32_t lane = 0;
    if (!pinned) {
      const std::vector<std::uint32_t> mine =
          spec.partition_zones ? workload::ZoneSlice(zones, spec.workers, w)
                               : zones;
      if (!mine.empty()) {
        const std::uint32_t d = map.DeviceOf(mine.front());
        bool one_device = true;
        for (std::uint32_t z : mine) {
          one_device = one_device && map.DeviceOf(z) == d;
        }
        if (one_device) lane = 1 + d;
      }
    }
    plan[lane].push_back(w);
  }
  return plan;
}

std::uint64_t NextParallelEpoch() {
  static std::atomic<std::uint64_t> epoch{0};
  return epoch.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

Testbed::~Testbed() { Finish(); }

nvme::Controller& Testbed::controller() {
  if (!zns_devs_.empty()) return *zns_devs_.front();
  return *conv_;
}

void Testbed::FillZones(std::uint32_t first, std::uint32_t count) {
  ZSTOR_CHECK_MSG(!zns_devs_.empty(), "FillZones needs a ZNS testbed");
  const auto n = static_cast<std::uint32_t>(zns_devs_.size());
  for (std::uint32_t z = first; z < first + count; ++z) {
    // Same map as the stripe: logical zone z lives on device z % n.
    zns::ZnsDevice& dev = *zns_devs_[z % n];
    dev.DebugFillZone(z / n, dev.profile().zone_cap_bytes);
  }
}

std::vector<std::uint32_t> Testbed::ZoneList(std::uint32_t first,
                                             std::uint32_t count) const {
  std::vector<std::uint32_t> out;
  out.reserve(count);
  for (std::uint32_t z = first; z < first + count; ++z) out.push_back(z);
  return out;
}

void Testbed::EnsureSamplersRunning() {
  // Lane samplers are (re)scheduled from the driving thread before the
  // engine runs — legal per ParallelSimulator's threading contract.
  if (sampler_ != nullptr) sampler_->EnsureRunning();
  for (auto& s : lane_samplers_) {
    if (s != nullptr) s->EnsureRunning();
  }
}

workload::JobResult Testbed::RunJob(const workload::JobSpec& spec) {
  EnsureSamplersRunning();
  workload::JobResult r = psim_ != nullptr
                              ? RunSharded(spec)
                              : workload::RunJob(*sim_, *stack_, spec);
  if (telem_ != nullptr) r.Describe(telem_->metrics());
  return r;
}

std::vector<workload::JobResult> Testbed::RunJobs(
    const std::vector<workload::JobSpec>& specs) {
  EnsureSamplersRunning();
  std::vector<workload::JobResult> results;
  if (psim_ != nullptr) {
    // Start every spec's shards up front so concurrent jobs overlap in
    // virtual time exactly as workload::RunJobs makes them overlap.
    std::vector<std::vector<std::unique_ptr<workload::Job>>> all;
    all.reserve(specs.size());
    for (const auto& spec : specs) all.push_back(StartSharded(spec));
    psim_->Run(static_cast<unsigned>(sim_threads_));
    results.reserve(all.size());
    for (auto& parts : all) results.push_back(JoinSharded(parts));
  } else {
    std::vector<std::pair<hostif::Stack*, workload::JobSpec>> jobs;
    jobs.reserve(specs.size());
    for (const auto& spec : specs) jobs.emplace_back(stack_.get(), spec);
    results = workload::RunJobs(*sim_, jobs);
  }
  if (telem_ != nullptr) {
    for (const auto& r : results) r.Describe(telem_->metrics());
  }
  return results;
}

workload::JobResult Testbed::RunSharded(const workload::JobSpec& spec) {
  std::vector<std::unique_ptr<workload::Job>> parts = StartSharded(spec);
  const auto t0 = std::chrono::steady_clock::now();
  psim_->Run(static_cast<unsigned>(sim_threads_));
  if (std::getenv("ZSTOR_PSIM_DEBUG") != nullptr) {
    std::chrono::duration<double, std::milli> ms =
        std::chrono::steady_clock::now() - t0;
    std::fprintf(stderr,
                 "psim: parts=%zu windows=%llu messages=%llu run_ms=%.1f\n",
                 parts.size(),
                 static_cast<unsigned long long>(psim_->windows()),
                 static_cast<unsigned long long>(psim_->messages()),
                 ms.count());
  }
  return JoinSharded(parts);
}

std::vector<std::unique_ptr<workload::Job>> Testbed::StartSharded(
    const workload::JobSpec& spec) {
  ZSTOR_CHECK(psim_ != nullptr && striped_ != nullptr);
  const std::vector<std::vector<std::uint32_t>> plan = PlanShards(
      spec, stack_->info(), striped_->map(), resilient_ != nullptr);
  std::vector<std::unique_ptr<workload::Job>> parts;
  // Coordinator part first, then device lanes in index order; JoinSharded
  // merges in this fixed order so results are layout-deterministic.
  if (!plan[0].empty()) {
    workload::JobSpec s = spec;
    s.worker_ids = plan[0];
    parts.push_back(
        std::make_unique<workload::Job>(psim_->lane(0), *stack_, s));
  }
  for (std::uint32_t d = 0; d < lane_views_.size(); ++d) {
    if (plan[1 + d].empty()) continue;
    workload::JobSpec s = spec;
    s.worker_ids = plan[1 + d];
    parts.push_back(std::make_unique<workload::Job>(
        psim_->lane(1 + d), *lane_views_[d], s));
  }
  // All lanes share one clock at Run boundaries (the engine realigns
  // them at quiescence), so every part computes identical start/end
  // times — a worker's event schedule does not depend on its lane.
  for (auto& p : parts) p->Start();
  return parts;
}

workload::JobResult Testbed::JoinSharded(
    std::vector<std::unique_ptr<workload::Job>>& parts) {
  ZSTOR_CHECK_MSG(!parts.empty(), "job sharded to zero lanes");
  ZSTOR_CHECK_MSG(parts.front()->Done(),
                  "parallel run ended with an unfinished job shard");
  workload::JobResult r = parts.front()->result();
  for (std::size_t i = 1; i < parts.size(); ++i) {
    ZSTOR_CHECK_MSG(parts[i]->Done(),
                    "parallel run ended with an unfinished job shard");
    r.Merge(parts[i]->result());
  }
  return r;
}

hostif::StripeStats Testbed::CombinedStripeStats() const {
  hostif::StripeStats s = striped_->stats();
  for (std::size_t d = 0; d < lane_views_.size(); ++d) {
    const hostif::LaneStats& v = lane_views_[d]->stats();
    hostif::LaneStats& l = s.lanes[d];
    l.issued += v.issued;
    l.completed += v.completed;
    l.errors += v.errors;
    l.in_flight += v.in_flight;
    // An upper bound, not the true joint high-water mark: proxied and
    // sharded traffic peak independently per lane.
    l.max_in_flight += v.max_in_flight;
    s.boundary_rejects += lane_views_[d]->boundary_rejects();
  }
  return s;
}

telemetry::Snapshot Testbed::TakeSnapshot() {
  ZSTOR_CHECK_MSG(telem_ != nullptr,
                  "TakeSnapshot requires telemetry (WithTelemetry or "
                  "--trace/--metrics)");
  telemetry::MetricsRegistry& m = telem_->metrics();
  LayerPtrs layers;
  layers.zns.reserve(zns_devs_.size());
  for (const auto& dev : zns_devs_) layers.zns.push_back(dev.get());
  layers.conv = conv_.get();
  layers.kernel = kernel_;
  layers.striped = striped_;
  layers.faults = faults_.get();
  layers.resilient = resilient_;
  // Keep lane counters out of snapshots unless a timeline already
  // introduced them (the sampler's refresh uses per-lane mode, and mixing
  // per-lane presence across snapshots of one run would be confusing).
  DescribeLayers(layers, m, /*per_lane=*/sampler_ != nullptr);
  if (psim_ != nullptr) {
    // The describes above covered the coordinator's layers; fold in the
    // device-lane halves that Set-overwrite cleanly (stripe totals and
    // the fault sum). Lane registries themselves merge only at Finish —
    // merging here would double-count when Finish later re-merges.
    CombinedStripeStats().Describe(m);
    if (!lane_faults_.empty()) SumFaultCounters(lane_faults_).Describe(m);
  }
  return m.TakeSnapshot();
}

nvme::SmartLog Testbed::Smart() const {
  if (zns_devs_.empty()) return conv_->GetSmartLog();
  nvme::SmartLog agg = zns_devs_.front()->GetSmartLog();
  for (std::size_t d = 1; d < zns_devs_.size(); ++d) {
    AccumulateSmart(agg, zns_devs_[d]->GetSmartLog());
  }
  // ZNS write amplification is identically 1.0 per device, so the union
  // keeps device 0's value; recompute anyway in case a future model
  // diverges.
  if (agg.bytes_written > 0 && agg.media_bytes_programmed > 0) {
    agg.write_amplification =
        static_cast<double>(agg.media_bytes_programmed) /
        static_cast<double>(agg.bytes_written);
  }
  return agg;
}

nvme::ZoneReportLog Testbed::ZoneReport() const {
  ZSTOR_CHECK_MSG(!zns_devs_.empty(), "ZoneReport needs a ZNS testbed");
  if (zns_devs_.size() == 1) return zns_devs_.front()->GetZoneReportLog();
  const auto n = static_cast<std::uint32_t>(zns_devs_.size());
  const std::uint64_t zone_size_lbas =
      zns_devs_.front()->info().zone_size_lbas;
  std::vector<nvme::ZoneReportLog> per_dev;
  per_dev.reserve(n);
  nvme::ZoneReportLog agg;
  for (const auto& dev : zns_devs_) {
    per_dev.push_back(dev->GetZoneReportLog());
    const nvme::ZoneReportLog& r = per_dev.back();
    agg.num_zones += r.num_zones;
    agg.open_zones += r.open_zones;
    agg.active_zones += r.active_zones;
    agg.max_open += r.max_open;
    agg.max_active += r.max_active;
    agg.read_only_zones += r.read_only_zones;
    agg.offline_zones += r.offline_zones;
  }
  agg.zones.reserve(agg.num_zones);
  for (std::uint32_t lz = 0; lz < agg.num_zones; ++lz) {
    nvme::ZoneReportEntry e = per_dev[lz % n].zones[lz / n];
    const std::uint64_t dev_zslba = e.zslba;
    e.zone = lz;
    e.zslba = static_cast<std::uint64_t>(lz) * zone_size_lbas;
    e.write_pointer = e.zslba + (e.write_pointer - dev_zslba);
    agg.zones.push_back(std::move(e));
  }
  return agg;
}

nvme::DieUtilLog Testbed::DieUtil() const {
  if (zns_devs_.empty()) return conv_->GetDieUtilLog();
  nvme::DieUtilLog agg;
  std::uint32_t die_base = 0;
  for (const auto& dev : zns_devs_) {
    nvme::DieUtilLog one = dev->GetDieUtilLog();
    agg.elapsed_ns = std::max(agg.elapsed_ns, one.elapsed_ns);
    for (nvme::DieUtilEntry& e : one.dies) {
      e.die += die_base;
      agg.dies.push_back(e);
    }
    die_base += static_cast<std::uint32_t>(one.dies.size());
  }
  return agg;
}

std::string Testbed::LogPagesJson() const {
  std::string out = "{\"smart\":" + Smart().ToJson();
  out += ",\"die_util\":" + DieUtil().ToJson();
  if (!zns_devs_.empty()) out += ",\"zone_report\":" + ZoneReport().ToJson();
  out += "}";
  return out;
}

bool Testbed::WriteLogPages(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot open logpages file %s\n",
                 path.c_str());
    return false;
  }
  std::fprintf(f, "%s\n", LogPagesJson().c_str());
  std::fclose(f);
  return true;
}

void Testbed::MergeLaneTelemetry() {
  if (lanes_merged_ || telem_ == nullptr || psim_ == nullptr) return;
  lanes_merged_ = true;
  for (std::size_t d = 0; d < lane_telems_.size(); ++d) {
    if (lane_telems_[d] == nullptr) continue;
    telemetry::MetricsRegistry& lm = lane_telems_[d]->metrics();
    // Final batch export so each lane registry holds end-of-run values
    // even when no timeline sampler ever refreshed it.
    zns_devs_[d]->counters().Describe(lm);
    if (zns_devs_[d]->flash() != nullptr) {
      zns_devs_[d]->flash()->counters().Describe(lm);
    }
    if (d < lane_faults_.size() && lane_faults_[d] != nullptr) {
      lane_faults_[d]->counters().Describe(lm);
    }
    // Counters Add (then TakeSnapshot's Set-based describes overwrite
    // the sums with the authoritative totals); histograms merge — the
    // whole point, since per-command latencies live lane-side.
    telem_->metrics().MergeFrom(lm);
  }
}

void Testbed::Finish() {
  if (finished_ || telem_ == nullptr) return;
  finished_ = true;
  if (sampler_ != nullptr || !lane_samplers_.empty()) {
    // Close out the timeline: emit die-busy windows still open at end of
    // run, then a final partial-interval sample so no activity after the
    // last tick is lost.
    for (auto& dev : zns_devs_) {
      if (dev->flash() != nullptr) dev->flash()->FlushDieWindows();
    }
    if (conv_ != nullptr) conv_->flash().FlushDieWindows();
    for (auto& s : lane_samplers_) {
      if (s != nullptr) s->SampleFinal();
    }
    if (sampler_ != nullptr) sampler_->SampleFinal();
  }
  MergeLaneTelemetry();
  if (logpages_to_env_ && (!zns_devs_.empty() || conv_ != nullptr)) {
    harness::BenchEnv::Get().AddLogPages(label_, LogPagesJson());
  }
  telemetry::Snapshot snap = TakeSnapshot();
  if (!metrics_path_.empty()) {
    std::FILE* f = std::fopen(metrics_path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot open metrics file %s\n",
                   metrics_path_.c_str());
    } else {
      std::fprintf(f, "%s\n", snap.ToJson().c_str());
      std::fclose(f);
    }
  }
  if (report_to_env_) {
    harness::BenchEnv::Get().AddSnapshot(label_, std::move(snap));
  }
  if (psim_ != nullptr) {
    // Replay buffered lane telemetry into the real sinks in fixed lane
    // order (coordinator, then devices) — byte-identical output for any
    // worker-thread count.
    if (final_sink_ != nullptr) {
      if (coord_shard_ != nullptr) coord_shard_->ReplayInto(*final_sink_);
      for (telemetry::ShardSink* sh : lane_shards_) {
        if (sh != nullptr) sh->ReplayInto(*final_sink_);
      }
      final_sink_->Flush();
    }
    if (final_timeline_ != nullptr) {
      for (auto& cap : lane_tl_captures_) {
        if (cap != nullptr) {
          final_timeline_->AppendRaw(*cap);
          cap->clear();
        }
      }
      final_timeline_->Flush();
    }
  }
  telem_->Flush();
}

TestbedBuilder& TestbedBuilder::WithZnsProfile(const zns::ZnsProfile& p) {
  zns_profile_ = p;
  conv_profile_.reset();
  return *this;
}

TestbedBuilder& TestbedBuilder::WithConvProfile(const ftl::ConvProfile& p) {
  conv_profile_ = p;
  zns_profile_.reset();
  return *this;
}

TestbedBuilder& TestbedBuilder::WithDevices(std::uint32_t n) {
  num_devices_ = n;
  return *this;
}

TestbedBuilder& TestbedBuilder::WithStack(StackChoice s) {
  stack_ = s;
  return *this;
}

TestbedBuilder& TestbedBuilder::WithStackOptions(
    const hostif::StackOptions& opts) {
  stack_opts_ = opts;
  return *this;
}

TestbedBuilder& TestbedBuilder::WithLbaBytes(std::uint32_t lba_bytes) {
  lba_bytes_ = lba_bytes;
  return *this;
}

TestbedBuilder& TestbedBuilder::WithQueueDepth(std::uint32_t qp_depth) {
  stack_opts_.qp_depth = qp_depth;
  return *this;
}

TestbedBuilder& TestbedBuilder::WithTelemetry(TelemetryConfig cfg) {
  telem_cfg_ = std::move(cfg);
  return *this;
}

TestbedBuilder& TestbedBuilder::WithLabel(std::string label) {
  label_ = std::move(label);
  return *this;
}

TestbedBuilder& TestbedBuilder::WithFaults(const fault::FaultSpec& spec) {
  fault_spec_ = spec;
  return *this;
}

TestbedBuilder& TestbedBuilder::WithRetryPolicy(
    const hostif::RetryPolicy& policy) {
  retry_policy_ = policy;
  return *this;
}

TestbedBuilder& TestbedBuilder::WithSimThreads(int n) {
  // n = 0 explicitly forces the classic engine even when --sim-threads
  // is set; n >= 1 selects the parallel engine with n workers.
  ZSTOR_CHECK_MSG(n >= 0, "WithSimThreads needs n >= 0");
  sim_threads_ = n;
  return *this;
}

TestbedBuilder& TestbedBuilder::WithLookahead(sim::Time hop) {
  ZSTOR_CHECK_MSG(hop > 0, "interconnect lookahead must be positive");
  lookahead_ = hop;
  return *this;
}

Testbed TestbedBuilder::Build() {
  ZSTOR_CHECK_MSG(num_devices_ >= 1, "WithDevices needs n >= 1");
  ZSTOR_CHECK_MSG(num_devices_ == 1 || !conv_profile_.has_value(),
                  "multi-device testbeds stripe ZNS devices only");
  harness::BenchEnv& env = harness::BenchEnv::Get();
  // Engine selection: the builder override wins over --sim-threads; the
  // parallel engine needs >= 2 devices to have lanes worth splitting
  // (single-device and conventional testbeds keep the classic engine).
  const int sim_threads = sim_threads_.value_or(env.sim_threads_requested());
  const bool parallel =
      sim_threads >= 1 && num_devices_ >= 2 && !conv_profile_.has_value();
  Testbed tb;
  if (parallel) {
    tb.psim_ = std::make_unique<sim::ParallelSimulator>(num_devices_ + 1,
                                                        lookahead_);
    // Only the coordinator originates work between messages (workload
    // workers, rate limiters, retry timers); device lanes react.
    tb.psim_->SetSpontaneous(0, true);
    tb.sim_threads_ = sim_threads;
  } else {
    tb.sim_ = std::make_unique<sim::Simulator>();
  }
  auto host_sim = [&tb]() -> sim::Simulator& { return tb.sim(); };
  auto dev_sim = [&tb, parallel](std::uint32_t d) -> sim::Simulator& {
    return parallel ? tb.psim_->lane(1 + d) : *tb.sim_;
  };

  // Devices.
  if (conv_profile_.has_value()) {
    tb.conv_ = std::make_unique<ftl::ConvDevice>(*tb.sim_, *conv_profile_);
  } else {
    const zns::ZnsProfile base = zns_profile_.value_or(zns::Zn540Profile());
    for (std::uint32_t d = 0; d < num_devices_; ++d) {
      zns::ZnsProfile p = base;
      // Distinct per-device noise streams; devices are otherwise twins.
      p.seed = base.seed + 0x9E3779B97F4A7C15ull * d;
      tb.zns_devs_.push_back(
          std::make_unique<zns::ZnsDevice>(dev_sim(d), p, lba_bytes_));
    }
  }

  // Faults: explicit builder spec wins; otherwise the --faults flag
  // applies to every testbed the bench builds. Classic mode shares one
  // plan across the device set (its counters then report set-wide fault
  // activity); the parallel engine gives each device a private plan —
  // same spec, per-device-decorrelated seed — because a shared plan's
  // RNG would be pulled from several lanes at once, making fault
  // placement depend on thread interleaving.
  fault::FaultSpec fspec =
      fault_spec_.value_or(env.faults_requested() ? env.fault_spec()
                                                  : fault::FaultSpec{});
  if (fspec.enabled) {
    if (parallel) {
      for (std::uint32_t d = 0; d < num_devices_; ++d) {
        fault::FaultSpec per_dev = fspec;
        per_dev.seed = fspec.seed + 0x9E3779B97F4A7C15ull * d;
        tb.lane_faults_.push_back(
            std::make_unique<fault::FaultPlan>(per_dev));
        tb.zns_devs_[d]->AttachFaultPlan(tb.lane_faults_.back().get());
      }
    } else {
      tb.faults_ = std::make_unique<fault::FaultPlan>(fspec);
      for (auto& dev : tb.zns_devs_) dev->AttachFaultPlan(tb.faults_.get());
      if (tb.conv_ != nullptr) tb.conv_->AttachFaultPlan(tb.faults_.get());
    }
  }

  // Host stack(s): one lane per device via the shared factory; the lanes
  // of a multi-device set are striped into one logical namespace. Under
  // the parallel engine each device's real stack lives in that device's
  // lane and the coordinator's StripedStack routes through MailboxStack
  // proxies; a StripeLaneView per device serves sharded workers locally.
  if (parallel) {
    std::vector<std::unique_ptr<hostif::Stack>> proxies;
    proxies.reserve(num_devices_);
    for (std::uint32_t d = 0; d < num_devices_; ++d) {
      tb.lane_stacks_.push_back(
          hostif::MakeStack(stack_, dev_sim(d), *tb.zns_devs_[d], stack_opts_)
              .stack);
      proxies.push_back(std::make_unique<hostif::MailboxStack>(
          *tb.psim_, /*host_lane=*/0, /*dev_lane=*/1 + d,
          *tb.lane_stacks_.back()));
    }
    auto striped = std::make_unique<hostif::StripedStack>(
        tb.psim_->lane(0), std::move(proxies));
    tb.striped_ = striped.get();
    tb.stack_ = std::move(striped);
    for (std::uint32_t d = 0; d < num_devices_; ++d) {
      tb.lane_views_.push_back(std::make_unique<hostif::StripeLaneView>(
          dev_sim(d), *tb.lane_stacks_[d], tb.striped_->map(), d,
          tb.striped_->info()));
    }
  } else if (tb.zns_devs_.size() > 1) {
    std::vector<std::unique_ptr<hostif::Stack>> lanes;
    lanes.reserve(tb.zns_devs_.size());
    for (auto& dev : tb.zns_devs_) {
      lanes.push_back(
          hostif::MakeStack(stack_, *tb.sim_, *dev, stack_opts_).stack);
    }
    auto striped =
        std::make_unique<hostif::StripedStack>(*tb.sim_, std::move(lanes));
    tb.striped_ = striped.get();
    tb.stack_ = std::move(striped);
  } else {
    hostif::MadeStack made =
        hostif::MakeStack(stack_, *tb.sim_, tb.controller(), stack_opts_);
    tb.kernel_ = made.kernel;
    tb.stack_ = std::move(made.stack);
  }

  // Host resilience: wrap the stack when a policy was given, or by
  // default whenever faults are injected (a fault run without host
  // retries is almost never what an experiment wants; pass
  // WithRetryPolicy({.max_attempts = 1}) to observe raw errors).
  if (retry_policy_.has_value() || fspec.enabled) {
    tb.inner_stack_ = std::move(tb.stack_);
    auto resilient = std::make_unique<hostif::ResilientStack>(
        host_sim(), *tb.inner_stack_,
        retry_policy_.value_or(hostif::RetryPolicy{}));
    tb.resilient_ = resilient.get();
    tb.stack_ = std::move(resilient);
  }

  // Telemetry: explicit config wins; otherwise the bench flags decide.
  sim::Time sample_interval = sim::Milliseconds(100);
  if (telem_cfg_.has_value()) {
    tb.telem_ = std::make_unique<telemetry::Telemetry>();
    if (telem_cfg_->ring_capacity > 0) {
      auto ring =
          std::make_unique<telemetry::RingBufferSink>(telem_cfg_->ring_capacity);
      tb.ring_ = ring.get();
      tb.telem_->SetSink(std::move(ring));
    } else if (!telem_cfg_->trace_path.empty()) {
      tb.telem_->SetSink(
          std::make_unique<telemetry::JsonlFileSink>(telem_cfg_->trace_path));
    }
    tb.metrics_path_ = telem_cfg_->metrics_path;
    sample_interval = telem_cfg_->sample_interval;
    if (telem_cfg_->timeline_capture != nullptr ||
        !telem_cfg_->timeline_path.empty()) {
      auto writer =
          telem_cfg_->timeline_capture != nullptr
              ? std::make_unique<telemetry::TimelineWriter>(
                    telem_cfg_->timeline_capture)
              : std::make_unique<telemetry::TimelineWriter>(
                    telem_cfg_->timeline_path);
      writer->set_die_merge_gap_ns(
          telemetry::TimelineWriter::DefaultMergeGap(sample_interval));
      tb.telem_->SetTimeline(std::move(writer));
    }
  } else if (env.telemetry_requested()) {
    tb.telem_ = std::make_unique<telemetry::Telemetry>();
    if (telemetry::TraceSink* sink = env.shared_sink(); sink != nullptr) {
      tb.telem_->SetExternalSink(sink);
    }
    if (env.timeline_requested()) {
      tb.telem_->SetExternalTimeline(env.shared_timeline());
      sample_interval = env.sample_interval();
    }
    tb.report_to_env_ = true;
    tb.logpages_to_env_ = env.logpages_requested();
  }
  if (tb.telem_ != nullptr) {
    tb.label_ = label_.empty() ? env.NextLabel() : label_;
    // Sweep benches rebuild same-labeled testbeds per point, each
    // restarting virtual time at 0 — in the shared timeline file those
    // must stay distinct record groups ("gc-conv", "gc-conv#2", ...).
    tb.telem_->set_timeline_label(
        telem_cfg_.has_value() ? tb.label_
                               : env.UniqueTimelineLabel(tb.label_));
    if (parallel) {
      // Each lane buffers its telemetry privately during the run (a
      // shared sink or writer would interleave nondeterministically and
      // race); Finish replays the buffers into the real outputs in lane
      // order. Trace ids get per-lane namespaces so ids allocated
      // concurrently never collide — and never depend on interleaving.
      const std::uint64_t ns_base = (NextParallelEpoch() & 0xFFFFull) << 48;
      tb.telem_->tracer().SetIdNamespace(ns_base | (1ull << 40));
      if (tb.telem_->tracer().sink() != nullptr) {
        tb.final_sink_ = tb.telem_->tracer().sink();
        tb.final_sink_owned_ = tb.telem_->TakeOwnedSink();
        auto shard = std::make_unique<telemetry::ShardSink>();
        tb.coord_shard_ = shard.get();
        tb.telem_->SetSink(std::move(shard));
      }
      if (tb.telem_->timeline() != nullptr) {
        tb.final_timeline_ = tb.telem_->timeline();
        tb.final_timeline_owned_ = tb.telem_->TakeOwnedTimeline();
        tb.lane_tl_captures_.push_back(std::make_unique<std::string>());
        auto w = std::make_unique<telemetry::TimelineWriter>(
            tb.lane_tl_captures_.back().get());
        w->set_die_merge_gap_ns(tb.final_timeline_->die_merge_gap_ns());
        tb.telem_->SetTimeline(std::move(w));
      }
      for (std::uint32_t d = 0; d < num_devices_; ++d) {
        auto lt = std::make_unique<telemetry::Telemetry>();
        lt->tracer().SetIdNamespace(ns_base | ((2ull + d) << 40));
        lt->set_timeline_label(tb.telem_->timeline_label() + "/lane" +
                               std::to_string(d));
        if (tb.final_sink_ != nullptr) {
          auto shard = std::make_unique<telemetry::ShardSink>();
          tb.lane_shards_.push_back(shard.get());
          lt->SetSink(std::move(shard));
        }
        if (tb.final_timeline_ != nullptr) {
          tb.lane_tl_captures_.push_back(std::make_unique<std::string>());
          auto w = std::make_unique<telemetry::TimelineWriter>(
              tb.lane_tl_captures_.back().get());
          w->set_die_merge_gap_ns(tb.final_timeline_->die_merge_gap_ns());
          lt->SetTimeline(std::move(w));
        }
        tb.lane_telems_.push_back(std::move(lt));
      }
      for (std::uint32_t d = 0; d < num_devices_; ++d) {
        tb.zns_devs_[d]->AttachTelemetry(tb.lane_telems_[d].get(), d);
        tb.lane_stacks_[d]->AttachTelemetry(tb.lane_telems_[d].get());
        tb.lane_views_[d]->AttachTelemetry(tb.lane_telems_[d].get());
      }
    } else {
      for (std::size_t d = 0; d < tb.zns_devs_.size(); ++d) {
        tb.zns_devs_[d]->AttachTelemetry(tb.telem_.get(),
                                         static_cast<std::uint32_t>(d));
      }
      if (tb.conv_ != nullptr) tb.conv_->AttachTelemetry(tb.telem_.get());
    }
    tb.stack_->AttachTelemetry(tb.telem_.get());
    if (tb.telem_->timeline() != nullptr) {
      tb.sampler_ = std::make_unique<telemetry::MetricSampler>(
          host_sim(), tb.telem_->metrics(), *tb.telem_->timeline(),
          sample_interval, tb.telem_->timeline_label());
      // The refresh hook re-exports batch counters before each sample so
      // deltas reflect live device state, not the last TakeSnapshot().
      // Captures raw layer pointers (stable), never &tb (Testbed moves).
      // Under the parallel engine the coordinator's hook reads ONLY
      // coordinator-lane state (stripe proxies, retry layer): device and
      // fault counters mutate concurrently in other lanes and are
      // sampled by the per-lane hooks below instead.
      LayerPtrs layers;
      if (!parallel) {
        layers.zns.reserve(tb.zns_devs_.size());
        for (const auto& dev : tb.zns_devs_) layers.zns.push_back(dev.get());
        layers.conv = tb.conv_.get();
        layers.faults = tb.faults_.get();
      }
      layers.kernel = tb.kernel_;
      layers.striped = tb.striped_;
      layers.resilient = tb.resilient_;
      telemetry::MetricsRegistry* m = &tb.telem_->metrics();
      tb.sampler_->SetRefresh([layers, m] {
        DescribeLayers(layers, *m, /*per_lane=*/true);
      });
      if (parallel) {
        for (std::uint32_t d = 0; d < num_devices_; ++d) {
          telemetry::Telemetry& lt = *tb.lane_telems_[d];
          auto s = std::make_unique<telemetry::MetricSampler>(
              dev_sim(d), lt.metrics(), *lt.timeline(), sample_interval,
              lt.timeline_label());
          zns::ZnsDevice* dev = tb.zns_devs_[d].get();
          fault::FaultPlan* fp =
              d < tb.lane_faults_.size() ? tb.lane_faults_[d].get() : nullptr;
          telemetry::MetricsRegistry* lm = &lt.metrics();
          s->SetRefresh([dev, fp, lm] {
            dev->counters().Describe(*lm);
            if (dev->flash() != nullptr) dev->flash()->counters().Describe(*lm);
            if (fp != nullptr) fp->counters().Describe(*lm);
          });
          tb.lane_samplers_.push_back(std::move(s));
        }
      }
    }
  }
  return tb;
}

}  // namespace zstor
