#include "harness/testbed.h"

#include <cstdio>
#include <utility>

#include "harness/bench_flags.h"
#include "hostif/spdk_stack.h"
#include "sim/check.h"
#include "workload/runner.h"

namespace zstor {

const char* ToString(StackChoice k) {
  switch (k) {
    case StackChoice::kSpdk: return "spdk";
    case StackChoice::kKernelNone: return "kernel-none";
    case StackChoice::kKernelMq: return "kernel-mq-deadline";
  }
  return "?";
}

Testbed::~Testbed() { Finish(); }

nvme::Controller& Testbed::controller() {
  if (zns_ != nullptr) return *zns_;
  return *conv_;
}

void Testbed::FillZones(std::uint32_t first, std::uint32_t count) {
  ZSTOR_CHECK_MSG(zns_ != nullptr, "FillZones needs a ZNS testbed");
  for (std::uint32_t z = first; z < first + count; ++z) {
    zns_->DebugFillZone(z, zns_->profile().zone_cap_bytes);
  }
}

std::vector<std::uint32_t> Testbed::ZoneList(std::uint32_t first,
                                             std::uint32_t count) const {
  std::vector<std::uint32_t> out;
  out.reserve(count);
  for (std::uint32_t z = first; z < first + count; ++z) out.push_back(z);
  return out;
}

workload::JobResult Testbed::RunJob(const workload::JobSpec& spec) {
  workload::JobResult r = workload::RunJob(*sim_, *stack_, spec);
  if (telem_ != nullptr) r.Describe(telem_->metrics());
  return r;
}

std::vector<workload::JobResult> Testbed::RunJobs(
    const std::vector<workload::JobSpec>& specs) {
  std::vector<std::pair<hostif::Stack*, workload::JobSpec>> jobs;
  jobs.reserve(specs.size());
  for (const auto& spec : specs) jobs.emplace_back(stack_.get(), spec);
  std::vector<workload::JobResult> results =
      workload::RunJobs(*sim_, jobs);
  if (telem_ != nullptr) {
    for (const auto& r : results) r.Describe(telem_->metrics());
  }
  return results;
}

telemetry::Snapshot Testbed::TakeSnapshot() {
  ZSTOR_CHECK_MSG(telem_ != nullptr,
                  "TakeSnapshot requires telemetry (WithTelemetry or "
                  "--trace/--metrics)");
  telemetry::MetricsRegistry& m = telem_->metrics();
  if (zns_ != nullptr) {
    zns_->counters().Describe(m);
    if (zns_->flash() != nullptr) zns_->flash()->counters().Describe(m);
  }
  if (conv_ != nullptr) {
    conv_->counters().Describe(m);
    conv_->flash().counters().Describe(m);
  }
  if (kernel_ != nullptr) kernel_->scheduler_stats().Describe(m);
  if (faults_ != nullptr) faults_->counters().Describe(m);
  if (resilient_ != nullptr) resilient_->stats().Describe(m);
  return m.TakeSnapshot();
}

nvme::SmartLog Testbed::Smart() const {
  if (zns_ != nullptr) return zns_->GetSmartLog();
  return conv_->GetSmartLog();
}

nvme::ZoneReportLog Testbed::ZoneReport() const {
  ZSTOR_CHECK_MSG(zns_ != nullptr, "ZoneReport needs a ZNS testbed");
  return zns_->GetZoneReportLog();
}

nvme::DieUtilLog Testbed::DieUtil() const {
  if (zns_ != nullptr) return zns_->GetDieUtilLog();
  return conv_->GetDieUtilLog();
}

std::string Testbed::LogPagesJson() const {
  std::string out = "{\"smart\":" + Smart().ToJson();
  out += ",\"die_util\":" + DieUtil().ToJson();
  if (zns_ != nullptr) out += ",\"zone_report\":" + ZoneReport().ToJson();
  out += "}";
  return out;
}

bool Testbed::WriteLogPages(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot open logpages file %s\n",
                 path.c_str());
    return false;
  }
  std::fprintf(f, "%s\n", LogPagesJson().c_str());
  std::fclose(f);
  return true;
}

void Testbed::Finish() {
  if (finished_ || telem_ == nullptr) return;
  finished_ = true;
  if (logpages_to_env_ && (zns_ != nullptr || conv_ != nullptr)) {
    harness::BenchEnv::Get().AddLogPages(label_, LogPagesJson());
  }
  telemetry::Snapshot snap = TakeSnapshot();
  if (!metrics_path_.empty()) {
    std::FILE* f = std::fopen(metrics_path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot open metrics file %s\n",
                   metrics_path_.c_str());
    } else {
      std::fprintf(f, "%s\n", snap.ToJson().c_str());
      std::fclose(f);
    }
  }
  if (report_to_env_) {
    harness::BenchEnv::Get().AddSnapshot(label_, std::move(snap));
  }
  telem_->Flush();
}

TestbedBuilder& TestbedBuilder::WithZnsProfile(const zns::ZnsProfile& p) {
  zns_profile_ = p;
  conv_profile_.reset();
  return *this;
}

TestbedBuilder& TestbedBuilder::WithConvProfile(const ftl::ConvProfile& p) {
  conv_profile_ = p;
  zns_profile_.reset();
  return *this;
}

TestbedBuilder& TestbedBuilder::WithStack(StackChoice s) {
  stack_ = s;
  return *this;
}

TestbedBuilder& TestbedBuilder::WithLbaBytes(std::uint32_t lba_bytes) {
  lba_bytes_ = lba_bytes;
  return *this;
}

TestbedBuilder& TestbedBuilder::WithQueueDepth(std::uint32_t qp_depth) {
  qp_depth_ = qp_depth;
  return *this;
}

TestbedBuilder& TestbedBuilder::WithTelemetry(TelemetryConfig cfg) {
  telem_cfg_ = std::move(cfg);
  return *this;
}

TestbedBuilder& TestbedBuilder::WithLabel(std::string label) {
  label_ = std::move(label);
  return *this;
}

TestbedBuilder& TestbedBuilder::WithFaults(const fault::FaultSpec& spec) {
  fault_spec_ = spec;
  return *this;
}

TestbedBuilder& TestbedBuilder::WithRetryPolicy(
    const hostif::RetryPolicy& policy) {
  retry_policy_ = policy;
  return *this;
}

Testbed TestbedBuilder::Build() {
  Testbed tb;
  tb.sim_ = std::make_unique<sim::Simulator>();

  // Device.
  if (conv_profile_.has_value()) {
    tb.conv_ = std::make_unique<ftl::ConvDevice>(*tb.sim_, *conv_profile_);
  } else {
    tb.zns_ = std::make_unique<zns::ZnsDevice>(
        *tb.sim_, zns_profile_.value_or(zns::Zn540Profile()), lba_bytes_);
  }
  nvme::Controller& dev = tb.controller();

  // Faults: explicit builder spec wins; otherwise the --faults flag
  // applies to every testbed the bench builds.
  harness::BenchEnv& envf = harness::BenchEnv::Get();
  fault::FaultSpec fspec =
      fault_spec_.value_or(envf.faults_requested() ? envf.fault_spec()
                                                   : fault::FaultSpec{});
  if (fspec.enabled) {
    tb.faults_ = std::make_unique<fault::FaultPlan>(fspec);
    if (tb.zns_ != nullptr) tb.zns_->AttachFaultPlan(tb.faults_.get());
    if (tb.conv_ != nullptr) tb.conv_->AttachFaultPlan(tb.faults_.get());
  }

  // Host stack.
  switch (stack_) {
    case StackChoice::kSpdk:
      tb.stack_ =
          std::make_unique<hostif::SpdkStack>(*tb.sim_, dev, qp_depth_);
      break;
    case StackChoice::kKernelNone:
      tb.stack_ = std::make_unique<hostif::KernelStack>(
          *tb.sim_, dev, hostif::Scheduler::kNone, qp_depth_);
      break;
    case StackChoice::kKernelMq:
      tb.kernel_ = new hostif::KernelStack(
          *tb.sim_, dev, hostif::Scheduler::kMqDeadline, qp_depth_);
      tb.stack_.reset(tb.kernel_);
      break;
  }

  // Host resilience: wrap the stack when a policy was given, or by
  // default whenever faults are injected (a fault run without host
  // retries is almost never what an experiment wants; pass
  // WithRetryPolicy({.max_attempts = 1}) to observe raw errors).
  if (retry_policy_.has_value() || fspec.enabled) {
    tb.inner_stack_ = std::move(tb.stack_);
    auto resilient = std::make_unique<hostif::ResilientStack>(
        *tb.sim_, *tb.inner_stack_,
        retry_policy_.value_or(hostif::RetryPolicy{}));
    tb.resilient_ = resilient.get();
    tb.stack_ = std::move(resilient);
  }

  // Telemetry: explicit config wins; otherwise the bench flags decide.
  harness::BenchEnv& env = harness::BenchEnv::Get();
  if (telem_cfg_.has_value()) {
    tb.telem_ = std::make_unique<telemetry::Telemetry>();
    if (telem_cfg_->ring_capacity > 0) {
      auto ring =
          std::make_unique<telemetry::RingBufferSink>(telem_cfg_->ring_capacity);
      tb.ring_ = ring.get();
      tb.telem_->SetSink(std::move(ring));
    } else if (!telem_cfg_->trace_path.empty()) {
      tb.telem_->SetSink(
          std::make_unique<telemetry::JsonlFileSink>(telem_cfg_->trace_path));
    }
    tb.metrics_path_ = telem_cfg_->metrics_path;
  } else if (env.telemetry_requested()) {
    tb.telem_ = std::make_unique<telemetry::Telemetry>();
    if (telemetry::TraceSink* sink = env.shared_sink(); sink != nullptr) {
      tb.telem_->SetExternalSink(sink);
    }
    tb.report_to_env_ = true;
    tb.logpages_to_env_ = env.logpages_requested();
  }
  if (tb.telem_ != nullptr) {
    tb.label_ = label_.empty() ? env.NextLabel() : label_;
    if (tb.zns_ != nullptr) tb.zns_->AttachTelemetry(tb.telem_.get());
    if (tb.conv_ != nullptr) tb.conv_->AttachTelemetry(tb.telem_.get());
    tb.stack_->AttachTelemetry(tb.telem_.get());
  }
  return tb;
}

}  // namespace zstor
