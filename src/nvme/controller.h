// Device-side controller interface implemented by the ZNS and conventional
// device models, plus the namespace self-description host software reads
// (the `nvme id-ns` analogue).
#pragma once

#include <cstdint>

#include "nvme/types.h"
#include "sim/task.h"

namespace zstor::nvme {

/// Static namespace properties, as identify-namespace would report them.
struct NamespaceInfo {
  LbaFormat format;
  std::uint64_t capacity_lbas = 0;
  bool zoned = false;
  // Zoned-namespace fields (valid when `zoned`):
  std::uint64_t zone_size_lbas = 0;  // LBA-address span of one zone
  std::uint64_t zone_cap_lbas = 0;   // writable LBAs per zone (<= size)
  std::uint32_t num_zones = 0;
  std::uint32_t max_open_zones = 0;
  std::uint32_t max_active_zones = 0;
};

/// A device controller executes one NVMe command and returns its
/// completion. Execution time is whatever the device model charges in
/// virtual time; concurrency comes from many Execute() coroutines being in
/// flight at once (bounded by queue depth at the queue-pair layer).
class Controller {
 public:
  virtual ~Controller() = default;
  virtual const NamespaceInfo& info() const = 0;
  virtual sim::Task<Completion> Execute(const Command& cmd) = 0;
};

}  // namespace zstor::nvme
