#include "nvme/log_page.h"

#include "telemetry/json.h"

namespace zstor::nvme {

namespace {

using telemetry::AppendJsonNumber;
using telemetry::AppendJsonString;

void Field(std::string& out, const char* key, double v, bool first = false) {
  if (!first) out += ",";
  AppendJsonString(out, key);
  out += ":";
  AppendJsonNumber(out, v);
}

void Field(std::string& out, const char* key, std::uint64_t v,
           bool first = false) {
  Field(out, key, static_cast<double>(v), first);
}

}  // namespace

std::string SmartLog::ToJson() const {
  std::string out = "{\"device\":";
  AppendJsonString(out, device);
  Field(out, "host_reads", host_reads);
  Field(out, "host_writes", host_writes);
  Field(out, "bytes_read", bytes_read);
  Field(out, "bytes_written", bytes_written);
  Field(out, "host_rejects", host_rejects);
  Field(out, "media_errors", media_errors);
  Field(out, "read_faults", read_faults);
  Field(out, "write_faults", write_faults);
  Field(out, "retired_blocks", retired_blocks);
  Field(out, "spare_blocks_used", spare_blocks_used);
  Field(out, "spare_blocks_total", spare_blocks_total);
  Field(out, "media_read_retries", media_read_retries);
  Field(out, "media_page_reads", media_page_reads);
  Field(out, "media_page_programs", media_page_programs);
  Field(out, "media_block_erases", media_block_erases);
  Field(out, "media_bytes_read", media_bytes_read);
  Field(out, "media_bytes_programmed", media_bytes_programmed);
  Field(out, "zone_resets", zone_resets);
  Field(out, "zone_finishes", zone_finishes);
  Field(out, "zone_explicit_opens", zone_explicit_opens);
  Field(out, "zone_implicit_opens", zone_implicit_opens);
  Field(out, "zone_closes", zone_closes);
  Field(out, "zone_transitions", zone_transitions);
  Field(out, "zones_worn_offline", zones_worn_offline);
  Field(out, "zones_degraded_readonly", zones_degraded_readonly);
  Field(out, "zones_failed_offline", zones_failed_offline);
  Field(out, "gc_invocations", gc_invocations);
  Field(out, "gc_units_migrated", gc_units_migrated);
  Field(out, "gc_blocks_erased", gc_blocks_erased);
  Field(out, "write_amplification", write_amplification);
  out += "}";
  return out;
}

std::string ZoneReportLog::ToJson() const {
  std::string out = "{";
  Field(out, "num_zones", static_cast<std::uint64_t>(num_zones),
        /*first=*/true);
  Field(out, "open_zones", static_cast<std::uint64_t>(open_zones));
  Field(out, "active_zones", static_cast<std::uint64_t>(active_zones));
  Field(out, "max_open", static_cast<std::uint64_t>(max_open));
  Field(out, "max_active", static_cast<std::uint64_t>(max_active));
  Field(out, "read_only_zones",
        static_cast<std::uint64_t>(read_only_zones));
  Field(out, "offline_zones", static_cast<std::uint64_t>(offline_zones));
  out += ",\"zones\":[";
  for (std::size_t i = 0; i < zones.size(); ++i) {
    const ZoneReportEntry& z = zones[i];
    if (i > 0) out += ",";
    out += "{";
    Field(out, "zone", static_cast<std::uint64_t>(z.zone), /*first=*/true);
    Field(out, "state_raw", static_cast<std::uint64_t>(z.state_raw));
    out += ",\"state\":";
    AppendJsonString(out, z.state);
    Field(out, "zslba", z.zslba);
    Field(out, "write_pointer", z.write_pointer);
    Field(out, "written_bytes", z.written_bytes);
    Field(out, "cap_bytes", z.cap_bytes);
    Field(out, "retired_blocks", static_cast<std::uint64_t>(z.retired_blocks));
    Field(out, "occupancy", z.Occupancy());
    out += "}";
  }
  out += "]}";
  return out;
}

std::string DieUtilLog::ToJson() const {
  std::string out = "{";
  Field(out, "elapsed_ns", elapsed_ns, /*first=*/true);
  out += ",\"dies\":[";
  for (std::size_t i = 0; i < dies.size(); ++i) {
    const DieUtilEntry& d = dies[i];
    if (i > 0) out += ",";
    out += "{";
    Field(out, "die", static_cast<std::uint64_t>(d.die), /*first=*/true);
    Field(out, "reads", d.reads);
    Field(out, "programs", d.programs);
    Field(out, "erases", d.erases);
    Field(out, "busy_ns", d.busy_ns);
    Field(out, "utilization", d.utilization);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace zstor::nvme
