// NVMe-style log pages: structured, queryable device self-reports,
// modeled on the SMART / Health Information and Zone Report log pages a
// real controller serves through Get Log Page.
//
// Unlike trace events (what happened over time) these are *state*
// snapshots: free-function introspection with no virtual-time cost and no
// counter side effects, so tests and benches can interrogate a device
// mid-experiment without perturbing it. Both simulated devices produce
// them — zns::ZnsDevice::GetSmartLog()/GetZoneReportLog() and
// ftl::ConvDevice::GetSmartLog() — and zstor::Testbed bundles all of a
// device's pages into one JSON document (--logpages=FILE in benches).
//
// JSON schemas are documented in DESIGN.md §7.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace zstor::nvme {

/// SMART-like device health/activity log. One struct serves both device
/// models: fields that do not apply to a model are zero (e.g. zone_*
/// for the conventional FTL, gc_* for ZNS) and `device` says which model
/// produced the page.
struct SmartLog {
  std::string device;  // "zns" or "conv"

  // Host-visible command activity.
  std::uint64_t host_reads = 0;
  std::uint64_t host_writes = 0;  // writes + appends for ZNS
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  /// Commands rejected for host-side reasons (bad range, wrong zone
  /// state, open/active limits): caller bugs, not device faults.
  std::uint64_t host_rejects = 0;
  /// Commands completed with a media/hardware fault status. Together with
  /// host_rejects this replaces the old undifferentiated io_errors field.
  std::uint64_t media_errors = 0;

  // Media-fault detail (all zero without injected faults).
  std::uint64_t read_faults = 0;       // uncorrectable-read commands
  std::uint64_t write_faults = 0;      // NAND program failures observed
  std::uint64_t retired_blocks = 0;    // blocks taken out of service
  std::uint64_t spare_blocks_used = 0;
  std::uint64_t spare_blocks_total = 0;
  std::uint64_t media_read_retries = 0;  // correctable read-retry episodes

  // Media (NAND) activity — what the device did to flash to serve the
  // host, including padding/GC traffic the host never issued.
  std::uint64_t media_page_reads = 0;
  std::uint64_t media_page_programs = 0;
  std::uint64_t media_block_erases = 0;
  std::uint64_t media_bytes_read = 0;
  std::uint64_t media_bytes_programmed = 0;

  // Zone-management activity (ZNS only).
  std::uint64_t zone_resets = 0;
  std::uint64_t zone_finishes = 0;
  std::uint64_t zone_explicit_opens = 0;
  std::uint64_t zone_implicit_opens = 0;
  std::uint64_t zone_closes = 0;
  std::uint64_t zone_transitions = 0;
  std::uint64_t zones_worn_offline = 0;
  std::uint64_t zones_degraded_readonly = 0;  // via program failures
  std::uint64_t zones_failed_offline = 0;     // via spare exhaustion

  // Garbage-collection activity (conventional FTL only).
  std::uint64_t gc_invocations = 0;
  std::uint64_t gc_units_migrated = 0;
  std::uint64_t gc_blocks_erased = 0;

  /// NAND programs per host write; exactly 1.0 for ZNS (no device GC).
  double write_amplification = 1.0;

  std::string ToJson() const;
};

/// One zone's row in the Zone Report log.
struct ZoneReportEntry {
  std::uint32_t zone = 0;
  std::uint32_t state_raw = 0;  // numeric ZoneState value
  std::string state;            // "Empty", "ExplicitlyOpened", ...
  std::uint64_t zslba = 0;
  std::uint64_t write_pointer = 0;  // absolute LBA
  std::uint64_t written_bytes = 0;
  std::uint64_t cap_bytes = 0;
  /// NAND blocks of this zone retired after program failures (degraded
  /// zones report how much redundancy they lost).
  std::uint32_t retired_blocks = 0;

  /// written_bytes / cap_bytes in [0,1].
  double Occupancy() const {
    return cap_bytes == 0
               ? 0.0
               : static_cast<double>(written_bytes) /
                     static_cast<double>(cap_bytes);
  }
};

/// Zone Report log: per-zone state + occupancy plus the device-wide
/// open/active accounting the state machine enforces.
struct ZoneReportLog {
  std::uint32_t num_zones = 0;
  std::uint32_t open_zones = 0;
  std::uint32_t active_zones = 0;
  std::uint32_t max_open = 0;
  std::uint32_t max_active = 0;
  /// Degraded-zone populations (point-in-time counts over `zones`).
  std::uint32_t read_only_zones = 0;
  std::uint32_t offline_zones = 0;
  std::vector<ZoneReportEntry> zones;

  std::string ToJson() const;
};

/// One die's row in the Die Utilization log.
struct DieUtilEntry {
  std::uint32_t die = 0;
  std::uint64_t reads = 0;
  std::uint64_t programs = 0;
  std::uint64_t erases = 0;
  std::uint64_t busy_ns = 0;
  double utilization = 0.0;  // busy_ns / elapsed_ns, in [0,1]
};

/// Die Utilization log: how evenly work spread across the flash array —
/// the striping/contention ground truth behind the scalability figures.
struct DieUtilLog {
  std::uint64_t elapsed_ns = 0;  // virtual time the page covers
  std::vector<DieUtilEntry> dies;

  std::string ToJson() const;
};

}  // namespace zstor::nvme
