// NVMe command-set types shared by the ZNS and conventional device models.
//
// Mirrors the structure (not the binary layout) of the NVMe 2.0 base and
// Zoned Namespace command sets: I/O commands, zone management send/receive,
// status codes, and LBA formats.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "sim/time.h"

namespace zstor::nvme {

/// Logical block address.
using Lba = std::uint64_t;

enum class Opcode : std::uint8_t {
  kRead,
  kWrite,
  kAppend,          // ZNS Zone Append
  kZoneMgmtSend,    // open/close/finish/reset, selected by ZoneAction
  kZoneMgmtRecv,    // zone report
  kFlush,
  kDeallocate,      // dataset management / TRIM (conventional namespaces)
};

enum class ZoneAction : std::uint8_t {
  kNone,
  kOpen,    // Explicit Open
  kClose,
  kFinish,
  kReset,
};

enum class Status : std::uint8_t {
  kSuccess,
  kInvalidOpcode,
  kInvalidField,
  kLbaOutOfRange,
  kZoneBoundaryError,      // I/O crosses a zone boundary
  kZoneIsFull,
  kZoneIsEmpty,
  kZoneIsReadOnly,
  kZoneIsOffline,
  kZoneInvalidWrite,       // write not at the write pointer
  kZoneInvalidStateTransition,
  kTooManyActiveZones,
  kTooManyOpenZones,
  kWriteProhibited,
  kMediaReadError,         // uncorrectable NAND read (ECC exhausted)
  kWriteFault,             // NAND program failure lost buffered data
  kInternalError,          // device-internal failure
  /// Host-side pseudo-status: the command outlived the host stack's
  /// per-attempt timeout. Never produced by a device — synthesized by
  /// hostif::ResilientStack, and classified as retryable.
  kHostTimeout,
  /// The controller lost power (or is rebooting/recovering from a power
  /// loss): the command was dropped without executing, or its completion
  /// was lost in the crash. Retryable — the host re-drives the command
  /// once the controller is back (idempotency is the host's problem; see
  /// hostif::ResilientStack's append replay validation).
  kDeviceReset,
};

/// The highest Status enumerator. Tests iterate [0, kMaxStatus] to assert
/// ToString covers every value — keep in sync when extending the enum.
inline constexpr Status kMaxStatus = Status::kDeviceReset;

constexpr std::string_view ToString(Status s) {
  switch (s) {
    case Status::kSuccess: return "Success";
    case Status::kInvalidOpcode: return "InvalidOpcode";
    case Status::kInvalidField: return "InvalidField";
    case Status::kLbaOutOfRange: return "LbaOutOfRange";
    case Status::kZoneBoundaryError: return "ZoneBoundaryError";
    case Status::kZoneIsFull: return "ZoneIsFull";
    case Status::kZoneIsEmpty: return "ZoneIsEmpty";
    case Status::kZoneIsReadOnly: return "ZoneIsReadOnly";
    case Status::kZoneIsOffline: return "ZoneIsOffline";
    case Status::kZoneInvalidWrite: return "ZoneInvalidWrite";
    case Status::kZoneInvalidStateTransition:
      return "ZoneInvalidStateTransition";
    case Status::kTooManyActiveZones: return "TooManyActiveZones";
    case Status::kTooManyOpenZones: return "TooManyOpenZones";
    case Status::kWriteProhibited: return "WriteProhibited";
    case Status::kMediaReadError: return "MediaReadError";
    case Status::kWriteFault: return "WriteFault";
    case Status::kInternalError: return "InternalError";
    case Status::kHostTimeout: return "HostTimeout";
    case Status::kDeviceReset: return "DeviceReset";
  }
  return "Unknown";
}

/// True for statuses reporting a device-internal media/hardware fault (as
/// opposed to the host sending an invalid or inapplicable command). The
/// SMART log counts the two populations separately (media_errors vs.
/// host_rejects) and host retry policies treat them differently.
constexpr bool IsMediaError(Status s) {
  return s == Status::kMediaReadError || s == Status::kWriteFault ||
         s == Status::kInternalError;
}

constexpr std::string_view ToString(Opcode op) {
  switch (op) {
    case Opcode::kRead: return "read";
    case Opcode::kWrite: return "write";
    case Opcode::kAppend: return "append";
    case Opcode::kZoneMgmtSend: return "zone-mgmt-send";
    case Opcode::kZoneMgmtRecv: return "zone-mgmt-recv";
    case Opcode::kFlush: return "flush";
    case Opcode::kDeallocate: return "deallocate";
  }
  return "unknown";
}

/// The namespace's LBA format. The paper evaluates 512 B and 4 KiB
/// (Observation #1: the format strongly affects write/append latency).
struct LbaFormat {
  std::uint32_t lba_bytes = 4096;

  std::uint64_t BytesToLbas(std::uint64_t bytes) const {
    return (bytes + lba_bytes - 1) / lba_bytes;
  }
};

/// An NVMe command as submitted on a submission queue.
struct Command {
  Opcode opcode = Opcode::kRead;
  Lba slba = 0;            // starting LBA; for append: the zone's ZSLBA
  std::uint32_t nlb = 1;   // number of logical blocks
  ZoneAction zone_action = ZoneAction::kNone;
  bool select_all = false;  // zone mgmt: apply to all zones
  /// Zone Management Receive (report zones): maximum descriptors to
  /// return, 0 = all from `slba`'s zone onward.
  std::uint32_t report_max = 0;
  /// Telemetry correlation id threading the command through every layer's
  /// trace spans. 0 = unassigned; the queue pair assigns one on issue if
  /// the host stack hasn't already (telemetry::Tracer::NextId()).
  std::uint64_t trace_id = 0;
  /// End-to-end data-integrity tag (0 = untagged, the default: zero
  /// overhead). On writes/appends, LBA i of the command stores tag
  /// `payload_tag + i` — self-describing, so append callers that learn
  /// their LBA only from the completion can still reconstruct what each
  /// block must hold. On reads, any nonzero value requests tag readback
  /// via Completion::payload_tags. The tag stands in for the payload the
  /// simulator does not carry; crash/recovery tests verify that recovered
  /// devices return exactly the tags that were durably written.
  std::uint64_t payload_tag = 0;
};

/// One entry of a zone report (Zone Management Receive).
struct ZoneDescriptor {
  Lba zslba = 0;
  Lba write_pointer = 0;
  std::uint64_t zone_cap_lbas = 0;
  std::uint8_t state_raw = 0;  // zns::ZoneState numeric value
};

/// The completion queue entry.
struct Completion {
  Status status = Status::kSuccess;
  /// For append: the LBA the data landed on (returned by the device).
  Lba result_lba = 0;
  /// For zone management receive: the returned zone descriptors (stands
  /// in for the report buffer DMA'd to the host).
  std::vector<ZoneDescriptor> report;
  /// For reads issued with a nonzero Command::payload_tag: the stored tag
  /// of every LBA in the range (0 for never-written/discarded blocks).
  /// Empty unless tag readback was requested.
  std::vector<std::uint64_t> payload_tags;

  bool ok() const { return status == Status::kSuccess; }
};

}  // namespace zstor::nvme
