// A submission/completion queue pair: the transport between a host stack
// and a device controller.
//
// The queue pair bounds the number of in-flight commands (the experiment
// variable "queue depth", QD) and measures per-command latency from
// submission to completion — exactly the paper's latency definition
// (§III-B: "from the moment a request is submitted on the NVMe submission
// queue until a request is completed and visible on the completion queue").
#pragma once

#include <cstdint>
#include <utility>

#include "nvme/controller.h"
#include "nvme/types.h"
#include "sim/check.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace zstor::nvme {

struct TimedCompletion {
  Completion completion;
  sim::Time submitted = 0;
  sim::Time completed = 0;
  sim::Time latency() const { return completed - submitted; }
};

class QueuePair {
 public:
  QueuePair(sim::Simulator& s, Controller& ctrl, std::uint32_t depth)
      : sim_(s), ctrl_(ctrl), depth_(depth), slots_(s, depth) {
    ZSTOR_CHECK(depth > 0);
  }
  QueuePair(const QueuePair&) = delete;
  QueuePair& operator=(const QueuePair&) = delete;

  /// Submits a command and suspends until its completion is posted.
  /// Suspends first if the queue is full (in-flight == depth).
  sim::Task<TimedCompletion> Issue(Command cmd) {
    co_await slots_.Acquire();
    TimedCompletion out;
    out.submitted = sim_.now();
    out.completion = co_await ctrl_.Execute(cmd);
    out.completed = sim_.now();
    slots_.Release();
    ++completed_;
    co_return out;
  }

  std::uint64_t completed() const { return completed_; }
  std::uint32_t depth() const { return depth_; }
  std::uint64_t in_flight() const { return depth_ - slots_.available(); }

 private:
  sim::Simulator& sim_;
  Controller& ctrl_;
  std::uint32_t depth_;
  sim::Semaphore slots_;
  std::uint64_t completed_ = 0;
};

}  // namespace zstor::nvme
