// A submission/completion queue pair: the transport between a host stack
// and a device controller.
//
// The queue pair bounds the number of in-flight commands (the experiment
// variable "queue depth", QD) and measures per-command latency from
// submission to completion — exactly the paper's latency definition
// (§III-B: "from the moment a request is submitted on the NVMe submission
// queue until a request is completed and visible on the completion queue").
#pragma once

#include <cstdint>
#include <utility>

#include "nvme/controller.h"
#include "nvme/types.h"
#include "sim/check.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "telemetry/telemetry.h"

namespace zstor::nvme {

struct TimedCompletion {
  Completion completion;
  sim::Time submitted = 0;
  sim::Time completed = 0;
  std::uint64_t trace_id = 0;  // correlates with trace spans (0 = untraced)
  sim::Time latency() const { return completed - submitted; }
};

class QueuePair {
 public:
  QueuePair(sim::Simulator& s, Controller& ctrl, std::uint32_t depth)
      : sim_(s), ctrl_(ctrl), depth_(depth), slots_(s, depth) {
    ZSTOR_CHECK(depth > 0);
  }
  QueuePair(const QueuePair&) = delete;
  QueuePair& operator=(const QueuePair&) = delete;

  void AttachTelemetry(telemetry::Telemetry* t) { telem_ = t; }

  /// Submits a command and suspends until its completion is posted.
  /// Suspends first if the queue is full (in-flight == depth).
  sim::Task<TimedCompletion> Issue(Command cmd) {
    telemetry::Tracer* tr =
        telem_ != nullptr ? &telem_->tracer() : nullptr;
    if (tr != nullptr && cmd.trace_id == 0) {
      cmd.trace_id = tr->NextId();
    }
    sim::Time enqueued = sim_.now();
    co_await slots_.Acquire();
    TimedCompletion out;
    out.trace_id = cmd.trace_id;
    out.submitted = sim_.now();
    if (tr != nullptr) {
      // qp.wait is zero-length whenever a slot was free (QD not yet
      // reached): Semaphore::Acquire doesn't suspend then.
      tr->Span(enqueued, out.submitted, cmd.trace_id,
               telemetry::Layer::kQueue, "qp.wait");
      tr->Instant(out.submitted, cmd.trace_id, telemetry::Layer::kQueue,
                  "qp.doorbell", static_cast<std::int64_t>(cmd.opcode),
                  static_cast<std::int64_t>(cmd.nlb));
      telem_->metrics().GetGauge("qp.inflight").Set(
          static_cast<double>(in_flight()));
    }
    out.completion = co_await ctrl_.Execute(cmd);
    out.completed = sim_.now();
    if (tr != nullptr) {
      tr->Instant(out.completed, cmd.trace_id, telemetry::Layer::kQueue,
                  "qp.cqe",
                  static_cast<std::int64_t>(out.completion.status));
      telem_->metrics().GetCounter("qp.completions").Add();
      telem_->metrics().GetGauge("qp.inflight").Set(
          static_cast<double>(in_flight()) - 1.0);
    }
    slots_.Release();
    ++completed_;
    co_return out;
  }

  std::uint64_t completed() const { return completed_; }
  std::uint32_t depth() const { return depth_; }
  std::uint64_t in_flight() const { return depth_ - slots_.available(); }

 private:
  sim::Simulator& sim_;
  Controller& ctrl_;
  std::uint32_t depth_;
  sim::Semaphore slots_;
  std::uint64_t completed_ = 0;
  telemetry::Telemetry* telem_ = nullptr;
};

}  // namespace zstor::nvme
