#include "zobj/zone_object_store.h"

#include <algorithm>

#include "sim/check.h"

namespace zstor::zobj {

using nvme::Command;
using nvme::Opcode;
using nvme::Status;
using nvme::ZoneAction;

void StoreStats::Describe(telemetry::MetricsRegistry& m) const {
  m.GetCounter("zobj.puts").Set(puts);
  m.GetCounter("zobj.gets").Set(gets);
  m.GetCounter("zobj.deletes").Set(deletes);
  m.GetCounter("zobj.compactions").Set(compactions);
  m.GetCounter("zobj.bytes_written").Set(bytes_written);
  m.GetCounter("zobj.bytes_relocated").Set(bytes_relocated);
  m.GetCounter("zobj.zone_resets").Set(zone_resets);
  m.GetCounter("zobj.write_reroutes").Set(write_reroutes);
  m.GetCounter("zobj.zones_degraded").Set(zones_degraded);
  m.GetCounter("zobj.lost_extents").Set(lost_extents);
  m.GetCounter("zobj.crash_recoveries").Set(crash_recoveries);
  m.GetCounter("zobj.truncated_extents").Set(truncated_extents);
  m.GetCounter("zobj.torn_extents").Set(torn_extents);
  m.GetCounter("zobj.crash_lost_bytes").Set(crash_lost_bytes);
  m.GetCounter("zobj.crash_lost_objects").Set(crash_lost_objects);
  m.GetGauge("zobj.write_amplification").Set(WriteAmplification());
}

ZoneObjectStore::ZoneObjectStore(sim::Simulator& s, hostif::Stack& stack,
                                 Options opt)
    : sim_(s),
      stack_(stack),
      opt_(opt),
      lba_bytes_(stack.info().format.lba_bytes),
      alloc_lock_(s, 1) {
  ZSTOR_CHECK(stack.info().zoned);
  ZSTOR_CHECK(opt_.zone_count >= 4);  // active + relocation + victim + spare
  ZSTOR_CHECK(opt_.first_zone + opt_.zone_count <= stack.info().num_zones);
  ZSTOR_CHECK(opt_.compact_free_low >= 1);
  ZSTOR_CHECK(opt_.max_append_lbas > 0);
  zones_.resize(opt_.zone_count);
  active_zone_ = opt_.first_zone;
  relocation_zone_ = opt_.first_zone + 1;
  for (std::uint32_t z = opt_.first_zone + 2;
       z < opt_.first_zone + opt_.zone_count; ++z) {
    free_zones_.push_back(z);
  }
}

nvme::Lba ZoneObjectStore::ZoneStartLba(std::uint32_t zone) const {
  return static_cast<nvme::Lba>(zone) * stack_.info().zone_size_lbas;
}

std::uint64_t ZoneObjectStore::zone_cap_bytes() const {
  return stack_.info().zone_cap_lbas * lba_bytes_;
}

std::uint64_t ZoneObjectStore::capacity_bytes() const {
  return zone_cap_bytes() * opt_.zone_count;
}

double ZoneObjectStore::GarbageFraction(std::uint32_t zone) const {
  const ZoneInfo& zi = zones_[ZoneIndex(zone)];
  if (zi.writen_bytes == 0) return 0.0;
  return static_cast<double>(zi.garbage_bytes) /
         static_cast<double>(zi.writen_bytes);
}

std::uint64_t ZoneObjectStore::ObjectBytes(std::uint64_t key) const {
  auto it = index_.find(key);
  if (it == index_.end()) return 0;
  std::uint64_t bytes = 0;
  for (const Extent& e : it->second) {
    bytes += static_cast<std::uint64_t>(e.lbas) * lba_bytes_;
  }
  return bytes;
}

void ZoneObjectStore::AddGarbage(const Extent& e) {
  ZoneInfo& zi = zones_[ZoneIndex(e.zone)];
  std::uint64_t bytes = static_cast<std::uint64_t>(e.lbas) * lba_bytes_;
  zi.garbage_bytes += bytes;
  ZSTOR_CHECK(zi.garbage_bytes <= zi.writen_bytes);
}

bool ZoneObjectStore::IsZoneWriteFailure(nvme::Status s) {
  return s == Status::kWriteFault || s == Status::kZoneIsReadOnly ||
         s == Status::kZoneIsOffline;
}

void ZoneObjectStore::DegradeZone(std::uint32_t zone) {
  ZoneInfo& zi = zones_[ZoneIndex(zone)];
  if (zi.degraded) return;
  zi.degraded = true;
  zi.sealed = true;
  stats_.zones_degraded++;
}

sim::Task<> ZoneObjectStore::RotateActiveZone() {
  zones_[ZoneIndex(active_zone_)].sealed = true;
  // Reclaim until a free zone is available (and keep headroom).
  while (free_zones_.size() < opt_.compact_free_low) {
    if (free_zones_.empty()) {
      co_await CompactOne();
      continue;
    }
    // Headroom is nice-to-have: compact opportunistically, but only if a
    // worthwhile victim exists; otherwise run with what we have.
    bool worthwhile = false;
    for (std::uint32_t z = opt_.first_zone;
         z < opt_.first_zone + opt_.zone_count; ++z) {
      const ZoneInfo& zi = zones_[ZoneIndex(z)];
      if (zi.sealed && !zi.compacting && !zi.degraded &&
          GarbageFraction(z) >= opt_.compact_garbage_min) {
        worthwhile = true;
      }
    }
    if (!worthwhile) break;
    co_await CompactOne();
  }
  ZSTOR_CHECK_MSG(!free_zones_.empty(), "object store is out of space");
  active_zone_ = free_zones_.front();
  free_zones_.pop_front();
  zones_[ZoneIndex(active_zone_)] = ZoneInfo{};
}

sim::Task<> ZoneObjectStore::CompactOne() {
  // Victim: the sealed zone with the most garbage.
  std::uint32_t victim = opt_.first_zone + opt_.zone_count;  // invalid
  std::uint64_t best_garbage = 0;
  for (std::uint32_t z = opt_.first_zone;
       z < opt_.first_zone + opt_.zone_count; ++z) {
    const ZoneInfo& zi = zones_[ZoneIndex(z)];
    // Degraded zones are never victims: they cannot be reset.
    if (!zi.sealed || zi.compacting || zi.degraded) continue;
    if (zi.garbage_bytes >= best_garbage) {
      best_garbage = zi.garbage_bytes;
      victim = z;
    }
  }
  ZSTOR_CHECK_MSG(victim < opt_.first_zone + opt_.zone_count,
                  "no compactable zone (store too full?)");
  ZoneInfo& vz = zones_[ZoneIndex(victim)];
  vz.compacting = true;

  // Snapshot the victim's live extents, then relocate with re-validation:
  // foreground Puts/Deletes may mutate the index while we await I/O.
  std::vector<std::pair<std::uint64_t, std::size_t>> work;
  for (auto& [key, extents] : index_) {
    for (std::size_t i = 0; i < extents.size(); ++i) {
      if (extents[i].zone == victim) work.emplace_back(key, i);
    }
  }
  for (auto [key, idx] : work) {
    auto it = index_.find(key);
    if (it == index_.end() || idx >= it->second.size() ||
        it->second[idx].zone != victim) {
      continue;  // replaced or deleted while we were relocating others
    }
    Extent e = it->second[idx];
    auto rd = co_await stack_.Submit(
        {.opcode = Opcode::kRead, .slba = e.lba, .nlb = e.lbas});
    if (!rd.completion.ok()) {
      // Uncorrectable even after host retries: the payload is gone. The
      // extent is still re-homed (the simulator carries no data, only
      // placement) so the index stays consistent; the loss is recorded.
      ZSTOR_CHECK_MSG(rd.completion.status == Status::kMediaReadError ||
                          rd.completion.status == Status::kHostTimeout ||
                          rd.completion.status == Status::kDeviceReset,
                      "compaction read failed with a host-side status");
      stats_.lost_extents++;
    }
    Extent moved = co_await AppendRelocated(e.lbas);
    stats_.bytes_relocated +=
        static_cast<std::uint64_t>(e.lbas) * lba_bytes_;
    // Re-validate before installing: the object may have changed during
    // the read+append.
    it = index_.find(key);
    if (it != index_.end() && idx < it->second.size() &&
        it->second[idx].zone == victim && it->second[idx].lba == e.lba) {
      it->second[idx] = moved;
    } else {
      // The relocated copy is orphaned garbage in the relocation zone.
      AddGarbage(moved);
    }
  }

  auto rst = co_await stack_.Submit({.opcode = Opcode::kZoneMgmtSend,
                                     .slba = ZoneStartLba(victim),
                                     .zone_action = ZoneAction::kReset});
  if (rst.completion.ok()) {
    zones_[ZoneIndex(victim)] = ZoneInfo{};
    free_zones_.push_back(victim);
    stats_.zone_resets++;
  } else if (rst.completion.status == Status::kDeviceReset) {
    // Power loss swallowed the reset (budget exhausted mid-outage). The
    // zone keeps its (already relocated, now all-garbage) contents and
    // stays sealed — a later compaction pass will reset it again.
    vz.compacting = false;
  } else {
    // The device degraded the zone while we were compacting it (a reset
    // on a ReadOnly/Offline zone reports the deferred write fault). Its
    // live data has just been relocated, so simply drop the zone from
    // the pool instead of recycling it.
    ZSTOR_CHECK_MSG(IsZoneWriteFailure(rst.completion.status),
                    "zone reset failed with a host-side status");
    vz.compacting = false;
    DegradeZone(victim);
  }
  stats_.compactions++;
}

sim::Task<Extent> ZoneObjectStore::AppendBlocks(std::uint32_t lbas) {
  ZSTOR_CHECK(static_cast<std::uint64_t>(lbas) * lba_bytes_ <=
              zone_cap_bytes());
  const std::uint64_t bytes = static_cast<std::uint64_t>(lbas) * lba_bytes_;
  for (;;) {
    std::uint32_t zone;
    {
      auto g = co_await alloc_lock_.Acquire();
      if (zones_[ZoneIndex(active_zone_)].degraded ||
          zones_[ZoneIndex(active_zone_)].writen_bytes + bytes >
              zone_cap_bytes()) {
        co_await RotateActiveZone();
      }
      zone = active_zone_;
      // Reserve host-side fill under the lock so concurrent appenders
      // never oversubscribe the zone.
      zones_[ZoneIndex(zone)].writen_bytes += bytes;
    }
    auto tc = co_await stack_.Submit({.opcode = Opcode::kAppend,
                                      .slba = ZoneStartLba(zone),
                                      .nlb = lbas});
    if (tc.completion.ok()) {
      co_return Extent{.zone = zone,
                       .lba = tc.completion.result_lba,
                       .lbas = lbas};
    }
    // Anything other than a zone-level write failure, a power-loss
    // outage, or a crash-induced fill mismatch means the reservation
    // logic is broken — that stays fatal.
    const Status st = tc.completion.status;
    ZSTOR_CHECK_MSG(IsZoneWriteFailure(st) || st == Status::kDeviceReset ||
                        st == Status::kZoneIsFull,
                    "append failed despite reservation");
    {
      auto g = co_await alloc_lock_.Acquire();
      zones_[ZoneIndex(zone)].writen_bytes -= bytes;
      if (IsZoneWriteFailure(st)) {
        // The device degraded the zone under us: take it out of the
        // write path and re-drive into whichever zone is active next.
        DegradeZone(zone);
      } else if (st == Status::kZoneIsFull) {
        // Host fill estimate drifted below the device's (an append the
        // crash made durable after its completion was lost): seal and
        // rotate; RecoverAfterCrash resyncs the accounting.
        zones_[ZoneIndex(zone)].writen_bytes = zone_cap_bytes();
        zones_[ZoneIndex(zone)].sealed = true;
      }
      // kDeviceReset: the retry budget died inside an outage — just
      // un-reserve and re-drive against the recovered device.
      stats_.write_reroutes++;
    }
  }
}

sim::Task<Extent> ZoneObjectStore::AppendRelocated(std::uint32_t lbas) {
  // Compaction output bypasses the foreground allocator so a rotation
  // that is itself waiting on this compaction cannot deadlock it. The
  // relocation zone always has room because compaction keeps a spill
  // zone in reserve (ctor sizing + compact_free_low >= 1).
  std::uint64_t bytes = static_cast<std::uint64_t>(lbas) * lba_bytes_;
  for (;;) {
    if (zones_[ZoneIndex(relocation_zone_)].degraded ||
        zones_[ZoneIndex(relocation_zone_)].writen_bytes + bytes >
            zone_cap_bytes()) {
      // Seal the spent relocation zone into the regular population and
      // take a fresh one from the free list.
      zones_[ZoneIndex(relocation_zone_)].sealed = true;
      ZSTOR_CHECK_MSG(!free_zones_.empty(),
                      "relocation spill with no free zone (store overfull)");
      relocation_zone_ = free_zones_.front();
      free_zones_.pop_front();
      zones_[ZoneIndex(relocation_zone_)] = ZoneInfo{};
    }
    std::uint32_t zone = relocation_zone_;
    zones_[ZoneIndex(zone)].writen_bytes += bytes;
    auto tc = co_await stack_.Submit({.opcode = Opcode::kAppend,
                                      .slba = ZoneStartLba(zone),
                                      .nlb = lbas});
    if (tc.completion.ok()) {
      co_return Extent{.zone = zone,
                       .lba = tc.completion.result_lba,
                       .lbas = lbas};
    }
    const Status st = tc.completion.status;
    ZSTOR_CHECK_MSG(IsZoneWriteFailure(st) || st == Status::kDeviceReset ||
                        st == Status::kZoneIsFull,
                    "relocation append failed with a host-side status");
    zones_[ZoneIndex(zone)].writen_bytes -= bytes;
    if (IsZoneWriteFailure(st)) {
      DegradeZone(zone);
    } else if (st == Status::kZoneIsFull) {
      zones_[ZoneIndex(zone)].writen_bytes = zone_cap_bytes();
      zones_[ZoneIndex(zone)].sealed = true;
    }
    stats_.write_reroutes++;
  }
}

sim::Task<Status> ZoneObjectStore::Put(std::uint64_t key,
                                       std::uint64_t bytes) {
  if (bytes == 0) co_return Status::kInvalidField;
  std::uint64_t lbas_total = (bytes + lba_bytes_ - 1) / lba_bytes_;
  std::vector<Extent> extents;
  while (lbas_total > 0) {
    auto chunk = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(lbas_total, opt_.max_append_lbas));
    extents.push_back(co_await AppendBlocks(chunk));
    lbas_total -= chunk;
  }
  // Replace atomically from the index's point of view: old extents (if
  // any) become garbage.
  auto it = index_.find(key);
  if (it != index_.end()) {
    for (const Extent& e : it->second) {
      AddGarbage(e);
      live_bytes_ -= static_cast<std::uint64_t>(e.lbas) * lba_bytes_;
    }
  }
  for (const Extent& e : extents) {
    live_bytes_ += static_cast<std::uint64_t>(e.lbas) * lba_bytes_;
    stats_.bytes_written += static_cast<std::uint64_t>(e.lbas) * lba_bytes_;
  }
  index_[key] = std::move(extents);
  stats_.puts++;
  co_return Status::kSuccess;
}

sim::Task<Status> ZoneObjectStore::Get(std::uint64_t key) {
  auto it = index_.find(key);
  if (it == index_.end()) co_return Status::kLbaOutOfRange;  // not found
  for (const Extent& e : it->second) {
    auto tc = co_await stack_.Submit(
        {.opcode = Opcode::kRead, .slba = e.lba, .nlb = e.lbas});
    if (!tc.completion.ok()) co_return tc.completion.status;
  }
  stats_.gets++;
  co_return Status::kSuccess;
}

sim::Task<> ZoneObjectStore::RecoverAfterCrash() {
  stats_.crash_recoveries++;
  // 1. The recovered write pointers are the ground truth for what the
  //    device still holds.
  std::vector<std::uint64_t> wp_off(opt_.zone_count, 0);  // bytes into zone
  for (std::uint32_t z = opt_.first_zone;
       z < opt_.first_zone + opt_.zone_count; ++z) {
    auto tc = co_await stack_.Submit({.opcode = Opcode::kZoneMgmtRecv,
                                      .slba = ZoneStartLba(z),
                                      .report_max = 1});
    ZSTOR_CHECK_MSG(tc.completion.ok() && !tc.completion.report.empty(),
                    "zone report failed during crash recovery");
    wp_off[ZoneIndex(z)] =
        (tc.completion.report[0].write_pointer - ZoneStartLba(z)) *
        lba_bytes_;
  }

  // 2. Drop extents the device no longer holds and tally per-zone live
  //    bytes from what survives.
  std::vector<std::uint64_t> live_in_zone(opt_.zone_count, 0);
  std::vector<std::uint64_t> empty_keys;
  for (auto& [key, extents] : index_) {
    std::vector<Extent> kept;
    kept.reserve(extents.size());
    for (const Extent& e : extents) {
      const std::uint64_t bytes =
          static_cast<std::uint64_t>(e.lbas) * lba_bytes_;
      const std::uint64_t end_off =
          (e.lba + e.lbas - ZoneStartLba(e.zone)) * lba_bytes_;
      if (end_off <= wp_off[ZoneIndex(e.zone)]) {
        kept.push_back(e);
        live_in_zone[ZoneIndex(e.zone)] += bytes;
        continue;
      }
      const std::uint64_t start_off =
          (e.lba - ZoneStartLba(e.zone)) * lba_bytes_;
      if (start_off < wp_off[ZoneIndex(e.zone)]) {
        stats_.torn_extents++;  // partially durable: the tail tore off
      } else {
        stats_.truncated_extents++;  // never became durable at all
      }
      stats_.crash_lost_bytes += bytes;
      live_bytes_ -= bytes;
    }
    if (kept.size() != extents.size()) extents = std::move(kept);
    if (extents.empty()) empty_keys.push_back(key);
  }
  for (std::uint64_t key : empty_keys) {
    index_.erase(key);
    stats_.crash_lost_objects++;
  }

  // 3. Resync zone accounting: fill comes from the device, garbage is
  //    whatever the device holds that no live extent references.
  for (std::uint32_t z = opt_.first_zone;
       z < opt_.first_zone + opt_.zone_count; ++z) {
    ZoneInfo& zi = zones_[ZoneIndex(z)];
    if (zi.degraded) continue;  // frozen; accounting no longer matters
    zi.writen_bytes = wp_off[ZoneIndex(z)];
    ZSTOR_CHECK(live_in_zone[ZoneIndex(z)] <= zi.writen_bytes);
    zi.garbage_bytes = zi.writen_bytes - live_in_zone[ZoneIndex(z)];
    if (zi.writen_bytes >= zone_cap_bytes()) zi.sealed = true;
  }
}

sim::Task<Status> ZoneObjectStore::Delete(std::uint64_t key) {
  auto it = index_.find(key);
  if (it == index_.end()) co_return Status::kLbaOutOfRange;
  for (const Extent& e : it->second) {
    AddGarbage(e);
    live_bytes_ -= static_cast<std::uint64_t>(e.lbas) * lba_bytes_;
  }
  index_.erase(it);
  stats_.deletes++;
  co_return Status::kSuccess;
}

}  // namespace zstor::zobj
