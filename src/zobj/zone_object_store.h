// ZoneObjectStore: a zone-aware object store built on the ZNS public API —
// the application layer the paper's §II-C motivates (ZenFS, LSM key-value
// stores, log-structured file systems), and a living embodiment of its
// five recommendations:
//
//   R1/R2: data moves with zone appends (device-assigned LBAs) at
//          intra-zone concurrency, in large extents;
//   R3:    zones are sealed by appending to capacity — finish is never
//          issued;
//   R5:    space reclaim (compaction + reset) overlaps foreground I/O.
//
// Objects are immutable blobs keyed by integer id. A Put appends the
// object's bytes as one or more extents to the active zone; overwrites
// and deletes turn old extents into garbage. When free zones run low,
// compaction picks the fullest-garbage sealed zone, relocates its live
// extents and resets it — host-side GC, exactly the responsibility split
// ZNS creates (Obs. 11).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "hostif/stack.h"
#include "nvme/types.h"
#include "sim/resource.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "telemetry/metrics.h"

namespace zstor::zobj {

/// One contiguous run of an object's bytes on the device.
struct Extent {
  std::uint32_t zone = 0;
  nvme::Lba lba = 0;          // absolute start LBA (device-assigned)
  std::uint32_t lbas = 0;     // length
};

struct StoreStats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t deletes = 0;
  std::uint64_t compactions = 0;
  std::uint64_t bytes_written = 0;     // foreground
  std::uint64_t bytes_relocated = 0;   // compaction traffic
  std::uint64_t zone_resets = 0;
  // Fault handling (all zero on a healthy device).
  std::uint64_t write_reroutes = 0;    // appends re-driven to another zone
  std::uint64_t zones_degraded = 0;    // zones dropped from the write path
  std::uint64_t lost_extents = 0;      // extents whose data was unreadable
  // Crash recovery (DESIGN.md §11; all zero without power-loss faults).
  std::uint64_t crash_recoveries = 0;  // RecoverAfterCrash() passes
  std::uint64_t truncated_extents = 0;  // wholly beyond the recovered wp
  std::uint64_t torn_extents = 0;      // straddled the recovered wp
  std::uint64_t crash_lost_bytes = 0;  // bytes dropped by recovery
  std::uint64_t crash_lost_objects = 0;  // objects left with no extents

  /// Total device writes per byte of user data — the store's own write
  /// amplification (the device adds none: ZNS, Obs. 11).
  double WriteAmplification() const {
    return bytes_written == 0
               ? 1.0
               : 1.0 + static_cast<double>(bytes_relocated) /
                           static_cast<double>(bytes_written);
  }

  /// Exports every counter into the registry under the "zobj." prefix
  /// (the shared Describe protocol; see telemetry/metrics.h) plus the
  /// derived write_amplification gauge.
  void Describe(telemetry::MetricsRegistry& m) const;
};

class ZoneObjectStore {
 public:
  struct Options {
    std::uint32_t first_zone = 0;
    std::uint32_t zone_count = 8;
    /// Compact when fewer than this many zones are free...
    std::uint32_t compact_free_low = 2;
    /// ...choosing sealed zones whose garbage fraction exceeds this.
    double compact_garbage_min = 0.10;
    /// Maximum LBAs per append command (split larger objects).
    std::uint32_t max_append_lbas = 64;
  };

  ZoneObjectStore(sim::Simulator& s, hostif::Stack& stack, Options opt);

  /// Writes (or replaces) an object of `bytes` length. Suspends through
  /// the appends; may trigger synchronous compaction when space is tight.
  sim::Task<nvme::Status> Put(std::uint64_t key, std::uint64_t bytes);

  /// Reads the whole object back (every extent).
  sim::Task<nvme::Status> Get(std::uint64_t key);

  /// Removes the object (its extents become garbage for compaction).
  sim::Task<nvme::Status> Delete(std::uint64_t key);

  /// Reconciles the index with a device that just recovered from a power
  /// loss: re-reads every managed zone's write pointer and drops extents
  /// the device no longer holds — wholly-beyond-wp extents were truncated
  /// (their appends never became durable), extents straddling the wp are
  /// torn. Per-zone fill/garbage accounting is resynced to the recovered
  /// write pointers. Call with no store I/O in flight.
  sim::Task<> RecoverAfterCrash();

  bool Contains(std::uint64_t key) const {
    return index_.find(key) != index_.end();
  }
  std::uint64_t ObjectBytes(std::uint64_t key) const;
  std::size_t object_count() const { return index_.size(); }

  std::uint64_t live_bytes() const { return live_bytes_; }
  std::uint64_t capacity_bytes() const;
  double GarbageFraction(std::uint32_t zone) const;
  const StoreStats& stats() const { return stats_; }

 private:
  struct ZoneInfo {
    std::uint64_t writen_bytes = 0;   // host-tracked fill estimate
    std::uint64_t garbage_bytes = 0;
    bool sealed = false;              // reached capacity
    bool compacting = false;
    /// The device degraded this zone (ReadOnly/Offline/write fault): no
    /// more appends, never a compaction victim (it cannot be reset), and
    /// never returned to the free list. Its extents stay readable while
    /// the zone is ReadOnly.
    bool degraded = false;
  };

  std::uint32_t ZoneIndex(std::uint32_t zone) const {
    return zone - opt_.first_zone;
  }
  nvme::Lba ZoneStartLba(std::uint32_t zone) const;
  std::uint64_t zone_cap_bytes() const;

  /// Appends `lbas` blocks to the active zone (rotating and compacting as
  /// needed); returns the extent they landed on.
  sim::Task<Extent> AppendBlocks(std::uint32_t lbas);
  sim::Task<> RotateActiveZone();          // seal current, take a free one
  sim::Task<> CompactOne();                // relocate + reset one victim
  /// Appends into the dedicated relocation zone (compaction output only —
  /// a separate write stream so compaction can always make progress while
  /// foreground appends wait on rotation).
  sim::Task<Extent> AppendRelocated(std::uint32_t lbas);
  void AddGarbage(const Extent& e);
  /// True for completion statuses meaning "this zone can no longer accept
  /// writes" — the store reroutes to another zone instead of failing.
  static bool IsZoneWriteFailure(nvme::Status s);
  /// Takes `zone` out of the write path (sealed + degraded).
  void DegradeZone(std::uint32_t zone);

  sim::Simulator& sim_;
  hostif::Stack& stack_;
  Options opt_;
  std::uint32_t lba_bytes_;

  std::unordered_map<std::uint64_t, std::vector<Extent>> index_;
  std::vector<ZoneInfo> zones_;
  std::deque<std::uint32_t> free_zones_;
  std::uint32_t active_zone_;
  std::uint32_t relocation_zone_;  // reserved compaction output zone
  /// Serializes zone rotation and compaction decisions (appends
  /// themselves run concurrently).
  sim::FifoResource alloc_lock_;
  std::uint64_t live_bytes_ = 0;
  StoreStats stats_;
};

}  // namespace zstor::zobj
