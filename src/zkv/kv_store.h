// zkv: a zone-aware LSM key-value engine on the hostif::Stack API
// (DESIGN.md §13).
//
// The paper motivates ZNS as a substrate for log-structured application
// stacks (§II-C: ZenFS, LSM key-value stores); zkv is that stack, built
// the way the paper's recommendations say it should be:
//
//   R1  data moves as large zone appends (Options::max_append_lbas per
//       command; SSTables and WAL records are append-only),
//   R2  appends to one zone stay concurrent — capacity is reserved under
//       a short allocator lock but the appends themselves overlap, the
//       device assigns the LBAs,
//   R3  zones are sealed by appending to capacity, never by Zone Finish
//       (a full zone costs nothing to seal; finishing an almost-empty
//       zone costs ~900 ms, Fig. 5b),
//   R4  lifetime-based placement: low levels (memtable flushes, L0/L1
//       compaction output) are short-lived and go to the "hot" open
//       zone; high levels are long-lived and go to the "cold" open zone,
//       so zones die wholesale and reset without relocation,
//   R5  compaction overlaps foreground I/O: a background coroutine with
//       its own (low) I/O depth, never stopping the world — foreground
//       pays only the write stalls the LSM shape itself imposes.
//
// Structure: puts append a WAL record to one of two dedicated log zones
// (segment per memtable generation; the segment is reset once its
// memtable's SSTable is durable — a WAL "checkpoint"), then land in the
// in-memory memtable. Full memtables rotate to an immutable twin that a
// background coroutine flushes as one sorted SSTable written in large
// appends and made durable by an NVMe Flush. Leveled, zone-garbage-aware
// compaction merges overlapping tables downward, preferring victims
// whose zones hold the most garbage so zone reclamation is cheap; a
// separate reclaim pass resets fully-dead zones and relocates the
// remnants of mostly-dead ones when free zones run low.
//
// Integrity rides the payload-tag channel (nvme::Command::payload_tag):
// every WAL and SSTable LBA carries a unique tag, reads request tag
// readback, and RecoverAfterCrash() re-reads the durable state after a
// power loss, replays the WAL, and classifies every ledgered LBA into
// the workload::IntegrityVerifier taxonomy (exact / lost-unflushed /
// silent corruption).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "hostif/stack.h"
#include "nvme/types.h"
#include "sim/resource.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "telemetry/telemetry.h"
#include "workload/verifier.h"
#include "workload/ycsb.h"

namespace zstor::zkv {

/// Everything the engine counts, exported via Describe() as kv.* metrics.
/// All fields are uint64 so the sizeof drift guard in the coverage test
/// can prove Describe() never silently drops one.
struct KvStats {
  // Foreground operations.
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t deletes = 0;
  std::uint64_t found = 0;          // gets that hit a live value
  std::uint64_t missing = 0;        // gets that found nothing (or tombstone)
  std::uint64_t user_bytes = 0;     // value bytes accepted from callers
  // Write-ahead log.
  std::uint64_t wal_appends = 0;
  std::uint64_t wal_bytes = 0;      // bytes appended to log zones (padded)
  std::uint64_t wal_resets = 0;     // checkpoints: log segment resets
  // Memtable / flush pipeline.
  std::uint64_t memtable_rotations = 0;
  std::uint64_t flushes = 0;        // SSTable builds from immutable memtables
  std::uint64_t flush_bytes = 0;    // bytes appended by flushes
  std::uint64_t tables_written = 0;
  std::uint64_t tables_deleted = 0;
  // Compaction.
  std::uint64_t compactions = 0;
  std::uint64_t compact_bytes_read = 0;
  std::uint64_t compact_bytes_written = 0;
  // Zone reclamation.
  std::uint64_t gc_passes = 0;
  std::uint64_t gc_relocated_bytes = 0;  // live bytes moved off victims
  std::uint64_t zone_resets = 0;
  // Stalls and reads.
  std::uint64_t write_stall_ns = 0;  // foreground time parked on the LSM
  std::uint64_t read_ios = 0;        // device reads issued by gets
  std::uint64_t read_tag_mismatches = 0;  // integrity check on every get
  // Crash recovery.
  std::uint64_t crash_recoveries = 0;
  std::uint64_t wal_replayed = 0;    // records re-inserted by replay
  std::uint64_t wal_lost = 0;        // unflushed records the crash dropped
  std::uint64_t tables_dropped = 0;  // non-durable tables discarded

  /// Total device write traffic per byte of user data: WAL + flush +
  /// compaction + relocation over user_bytes. The device itself adds no
  /// amplification (ZNS, Obs. 11) — this is the whole stack's WA.
  double WriteAmplification() const {
    if (user_bytes == 0) return 1.0;
    return static_cast<double>(wal_bytes + flush_bytes +
                               compact_bytes_written + gc_relocated_bytes) /
           static_cast<double>(user_bytes);
  }

  void Describe(telemetry::MetricsRegistry& m) const;
};

/// Per-level shape and write-amplification accounting.
struct LevelStats {
  std::uint64_t tables = 0;         // current table count
  std::uint64_t bytes = 0;          // current user bytes resident
  std::uint64_t bytes_in = 0;       // cumulative bytes installed here
  std::uint64_t bytes_compacted = 0;  // cumulative bytes written by
                                      // compactions INTO this level
  std::uint64_t compactions = 0;    // compactions that output here
};

class KvStore : public workload::KvBackend {
 public:
  struct Options {
    /// Logical zone range owned by the store. Zones [first_zone,
    /// first_zone+2) are the two WAL segments; the rest hold SSTables.
    std::uint32_t first_zone = 0;
    std::uint32_t zone_count = 12;
    /// Memtable rotation threshold (value bytes). Must fit a WAL
    /// segment: checked against zone capacity at construction.
    std::uint64_t memtable_bytes = 256 * 1024;
    /// L0 table count that triggers compaction / stalls writers.
    std::uint32_t l0_compact_trigger = 4;
    std::uint32_t l0_stall_limit = 8;
    /// Leveled shape: level L >= 1 targets level1_bytes * mult^(L-1).
    std::uint32_t max_levels = 4;
    std::uint64_t level1_bytes = 1 << 20;
    double level_mult = 4.0;
    /// Largest SSTable a compaction emits before cutting a new one.
    std::uint64_t max_table_bytes = 1 << 20;
    /// Blocks per append command (R1: keep this large).
    std::uint32_t max_append_lbas = 64;
    /// Blocks per compaction read (table iteration granularity; small,
    /// like an un-readahead LSM iterator).
    std::uint32_t compact_read_lbas = 4;
    /// Background compaction+GC rate limit in MiB/s (0 = unthrottled).
    /// Real LSMs throttle background I/O to protect foreground tails;
    /// the interference bench uses it to stretch `kv.compact` windows.
    double compact_rate_mibps = 0.0;
    /// Lifetime-based placement (R4): route L0/L1 output and flushes to
    /// the hot open zone, deeper levels to the cold one. Off = one
    /// shared open zone for everything (the placement-off baseline).
    bool lifetime_placement = true;
    /// Reclaim when free zones drop below this; victims need at least
    /// this garbage fraction before relocation is worth it.
    std::uint32_t free_zone_low = 2;
    double gc_garbage_min = 0.05;
    /// Returns the device's power epoch (fault::FaultPlan crashes bump
    /// it). Sampled at flush acknowledgment: a flush only certifies
    /// durability when the epoch did not change. Unset = no crashes.
    std::function<std::uint64_t()> crash_epoch;
  };

  KvStore(sim::Simulator& s, hostif::Stack& stack, Options opt);
  ~KvStore() override;

  /// Enables kv.* trace spans and `kv.compact`/`kv.flush`/`kv.gc`
  /// timeline windows (non-owning; null disables).
  void AttachTelemetry(telemetry::Telemetry* t) { telem_ = t; }

  // ---- workload::KvBackend -------------------------------------------
  /// Appends a WAL record, inserts into the memtable, and applies the
  /// LSM's write-stall discipline. Returns the WAL append status.
  sim::Task<nvme::Status> Put(std::uint64_t key,
                              std::uint64_t value_bytes) override;
  /// Looks up newest-version-first (memtable, immutable, L0 newest to
  /// oldest, then one candidate table per deeper level), charging one
  /// ranged device read for the entry it lands on. *found (optional)
  /// reports whether a live value existed.
  sim::Task<nvme::Status> Get(std::uint64_t key, bool* found) override;
  sim::Task<nvme::Status> Delete(std::uint64_t key);

  /// Suspends until no flush, compaction, or reclaim work remains. Call
  /// before reading final stats or tearing down the simulation.
  sim::Task<> Drain();

  /// Post-crash pass: zone-report the store's range, discard what the
  /// power loss legitimately dropped, replay the WAL, re-read and
  /// tag-verify every surviving ledgered LBA, and classify the lot into
  /// the IntegrityVerifier taxonomy. The store is usable again after.
  sim::Task<workload::IntegrityVerifier::Report> RecoverAfterCrash();

  const KvStats& stats() const { return stats_; }
  const std::vector<LevelStats>& level_stats() const { return levels_stats_; }
  /// Live key count across memtables and tables (upper bound: shadowed
  /// versions counted once per table).
  std::uint64_t ApproxKeys() const;
  std::uint32_t free_zones() const {
    return static_cast<std::uint32_t>(free_zones_.size());
  }

 private:
  // ---- on-device layout ----------------------------------------------
  /// One contiguous appended run of an SSTable. `tag_base` tags the
  /// extent's first LBA; LBA i holds tag_base + i.
  struct Extent {
    std::uint32_t zone = 0;
    nvme::Lba lba = 0;
    std::uint32_t lbas = 0;
    std::uint64_t tag_base = 0;
  };

  struct TableEntry {
    std::uint64_t key = 0;
    std::uint64_t bytes = 0;     // value size (0 allowed)
    std::uint64_t seq = 0;       // newer wins
    bool tombstone = false;
  };

  struct SsTable {
    std::uint64_t id = 0;
    std::uint32_t level = 0;
    std::vector<TableEntry> entries;      // sorted by key
    std::vector<std::uint32_t> lba_off;   // entry i starts at LBA offset
    std::uint32_t data_lbas = 0;          // total LBAs incl. padding
    std::uint64_t data_bytes = 0;         // sum of value bytes
    std::vector<Extent> extents;
    bool durable = false;                 // certified by a same-epoch flush
    bool compacting = false;              // claimed by compaction or GC
    bool installed = false;               // counted in a level's shape
    bool dropped = false;                 // removed (extents are garbage)
    bool write_failed = false;            // an append outran its retries
    std::uint64_t write_epoch = 0;        // power epoch when written
    std::uint64_t min_key = 0, max_key = 0;
  };
  using TablePtr = std::shared_ptr<SsTable>;

  struct MemValue {
    std::uint64_t bytes = 0;
    std::uint64_t seq = 0;
    bool tombstone = false;
  };
  using Memtable = std::map<std::uint64_t, MemValue>;

  /// Host-side ledger of one WAL record (one put/delete).
  struct WalRecord {
    std::uint64_t key = 0;
    std::uint64_t bytes = 0;
    std::uint64_t seq = 0;
    bool tombstone = false;
    std::uint8_t segment = 0;    // which WAL zone
    nvme::Lba lba = 0;           // from the append completion
    std::uint32_t lbas = 0;
    std::uint64_t tag_base = 0;
    bool acked = false;          // append completed successfully
    std::uint64_t epoch = 0;     // power epoch at acknowledgment
    bool durable = false;        // covering SSTable flush certified
  };

  enum class ZoneClass : std::uint8_t { kHot = 0, kCold = 1 };
  struct ZoneInfo {
    std::uint32_t zone = 0;       // logical zone number
    std::uint64_t written_lbas = 0;
    std::uint64_t live_lbas = 0;
    bool open = false;            // currently an allocation target
  };

  /// Re-armable broadcast signal (sim::OneShotEvent is one-shot; stalls
  /// need notify-all-then-rearm).
  struct Signal {
    explicit Signal(sim::Simulator& s) : sim(s) {}
    sim::Simulator& sim;
    std::deque<std::coroutine_handle<>> waiters;
    struct Awaiter {
      Signal& sig;
      bool await_ready() const { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sig.waiters.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    Awaiter Wait() { return Awaiter{*this}; }
    void NotifyAll() {
      for (auto h : waiters) sim.ResumeSoon(h);
      waiters.clear();
    }
  };

  // ---- helpers ---------------------------------------------------------
  static bool IsZoneWriteFailure(nvme::Status s);
  nvme::Lba ZoneStartLba(std::uint32_t zone) const;
  /// Index of a DATA zone in zones_ (zones_[0] is the first zone after
  /// the two WAL segments).
  std::uint32_t ZoneIndex(std::uint32_t zone) const {
    return zone - opt_.first_zone - 2;
  }
  std::uint64_t zone_cap_lbas() const;
  std::uint64_t Epoch() const {
    return opt_.crash_epoch ? opt_.crash_epoch() : 0;
  }
  std::uint64_t TakeTags(std::uint64_t n) {
    std::uint64_t t = next_tag_;
    next_tag_ += n;
    return t;
  }
  std::uint32_t EntryLbas(std::uint64_t bytes) const;
  ZoneClass ClassForLevel(std::uint32_t level) const;
  std::uint64_t LevelTargetBytes(std::uint32_t level) const;
  double ZoneGarbage(const ZoneInfo& zi) const;
  /// Background-rate pacing (compact_rate_mibps) for `bytes` of I/O.
  sim::Task<> Pace(std::uint64_t bytes);

  // ---- write path ------------------------------------------------------
  sim::Task<nvme::Status> PutInternal(std::uint64_t key, std::uint64_t bytes,
                                      bool tombstone);
  sim::Task<nvme::Status> WalAppend(WalRecord& rec);
  sim::Task<> StallForRoom();        // L0 / imm backpressure, counts stall ns
  void MaybeRotateMemtable();        // rotate when the memtable is full
  void DoRotate();                   // mem_ -> imm_, switch WAL segment
  sim::Task<> FlushJob();            // background: imm_ -> L0 SSTable
  sim::Task<> BuildTable(std::vector<TableEntry> entries, std::uint32_t level,
                         bool paced, TablePtr* out);
  /// Reserves room in the class's open zone (rotating or reclaiming if
  /// needed) and appends one chunk. Returns the extent actually written
  /// (lbas == 0 reports failure).
  sim::Task<Extent> AppendChunk(ZoneClass cls, std::uint32_t lbas,
                                std::uint64_t tag_base);
  sim::Task<std::uint32_t> TakeOpenZone(ZoneClass cls);  // under alloc lock
  sim::Task<> ResetZone(std::uint32_t zone);
  void MaybeScheduleReclaim();
  sim::Task<> ReclaimJob(bool need_free);
  sim::Task<> ReclaimZones(bool need_free);   // GC pass (serialized)
  sim::Task<> RelocateTablePart(TablePtr t, std::uint32_t victim);
  sim::Task<Extent> RelocAppend(std::uint32_t lbas, std::uint64_t tag_base);

  // ---- compaction ------------------------------------------------------
  struct CompactionJob {
    std::uint32_t from_level = 0;
    std::vector<TablePtr> inputs;     // from `from_level` and from_level+1
  };
  void MaybeScheduleCompaction();
  sim::Task<> CompactJob();
  bool PickCompaction(CompactionJob* job);
  sim::Task<> RunCompaction(CompactionJob job);
  void InstallTable(TablePtr t, std::uint32_t level);
  void DropTable(const TablePtr& t);  // extents -> garbage, stats
  /// One ranged read inside an extent. With verify_tags, tags feed `rep`
  /// when given (recovery classification) or the mismatch counter
  /// otherwise (foreground integrity checking).
  sim::Task<nvme::Status> ReadExtentRange(
      const Extent& e, std::uint32_t lba_off, std::uint32_t lbas,
      bool verify_tags, workload::IntegrityVerifier::Report* rep);

  // ---- read path -------------------------------------------------------
  sim::Task<nvme::Status> ReadEntry(const TablePtr& t, std::size_t idx);
  const TableEntry* FindInTable(const TablePtr& t, std::uint64_t key) const;

  // ---- recovery --------------------------------------------------------
  sim::Task<std::vector<nvme::ZoneDescriptor>> ReportZones();

  sim::Simulator& sim_;
  hostif::Stack& stack_;
  Options opt_;
  std::uint32_t lba_bytes_;
  telemetry::Telemetry* telem_ = nullptr;

  // LSM state.
  Memtable mem_;
  std::uint64_t mem_bytes_ = 0;
  std::unique_ptr<Memtable> imm_;    // at most one immutable memtable
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_table_id_ = 1;
  std::uint64_t next_tag_ = 1;       // 0 = untagged on the wire
  /// levels_[0] newest-first, overlapping; levels_[1..] sorted by
  /// min_key, disjoint.
  std::vector<std::vector<TablePtr>> levels_;
  std::vector<LevelStats> levels_stats_;

  // WAL state.
  std::uint8_t wal_segment_ = 0;           // active segment (0/1)
  std::uint64_t wal_used_lbas_[2] = {0, 0};
  std::uint64_t wal_pending_[2] = {0, 0};  // appends in flight per segment
  std::deque<WalRecord> wal_;              // ledger, seq order
  std::uint64_t mem_first_seq_ = 1;        // lowest seq still in mem_
  std::uint64_t imm_first_seq_ = 0;        // lowest seq in imm_ (0 = none)
  std::uint64_t imm_last_seq_ = 0;         // one past imm_'s highest seq
  std::uint8_t imm_segment_ = 0;           // segment covering imm_

  // Zone state.
  std::vector<ZoneInfo> zones_;            // data zones, by index
  std::deque<std::uint32_t> free_zones_;   // logical zone numbers
  std::int64_t open_zone_[2] = {-1, -1};   // per class; -1 = none
  std::int64_t reloc_zone_ = -1;           // GC's private output zone
  sim::FifoResource alloc_lock_;           // capacity reservation + rotation
  sim::FifoResource gc_lock_;              // one reclaim pass at a time
  sim::FifoResource compact_io_;           // background I/O depth = 1

  // Background workers.
  bool stopping_ = false;
  bool flush_busy_ = false;
  bool compact_busy_ = false;
  bool gc_busy_ = false;
  Signal flush_done_;         // wakes memtable-rotation stalls
  Signal compact_done_;       // wakes L0 stalls
  Signal wal_quiet_;          // per-segment appends drained
  Signal idle_;               // wakes Drain()
  sim::WaitGroup workers_;

  KvStats stats_;
};

}  // namespace zstor::zkv
