#include "zkv/kv_store.h"

#include <algorithm>
#include <utility>

#include "sim/check.h"

namespace zstor::zkv {

using nvme::Command;
using nvme::Opcode;
using nvme::Status;
using nvme::ZoneAction;

namespace {
/// Host-side bytes of a WAL record besides the value (key, seq, length,
/// CRC in a real engine). Padding rounds the record to whole LBAs.
constexpr std::uint64_t kWalHeaderBytes = 24;
}  // namespace

void KvStats::Describe(telemetry::MetricsRegistry& m) const {
  m.GetCounter("kv.puts").Add(puts);
  m.GetCounter("kv.gets").Add(gets);
  m.GetCounter("kv.deletes").Add(deletes);
  m.GetCounter("kv.found").Add(found);
  m.GetCounter("kv.missing").Add(missing);
  m.GetCounter("kv.user_bytes").Add(user_bytes);
  m.GetCounter("kv.wal_appends").Add(wal_appends);
  m.GetCounter("kv.wal_bytes").Add(wal_bytes);
  m.GetCounter("kv.wal_resets").Add(wal_resets);
  m.GetCounter("kv.memtable_rotations").Add(memtable_rotations);
  m.GetCounter("kv.flushes").Add(flushes);
  m.GetCounter("kv.flush_bytes").Add(flush_bytes);
  m.GetCounter("kv.tables_written").Add(tables_written);
  m.GetCounter("kv.tables_deleted").Add(tables_deleted);
  m.GetCounter("kv.compactions").Add(compactions);
  m.GetCounter("kv.compact_bytes_read").Add(compact_bytes_read);
  m.GetCounter("kv.compact_bytes_written").Add(compact_bytes_written);
  m.GetCounter("kv.gc_passes").Add(gc_passes);
  m.GetCounter("kv.gc_relocated_bytes").Add(gc_relocated_bytes);
  m.GetCounter("kv.zone_resets").Add(zone_resets);
  m.GetCounter("kv.write_stall_ns").Add(write_stall_ns);
  m.GetCounter("kv.read_ios").Add(read_ios);
  m.GetCounter("kv.read_tag_mismatches").Add(read_tag_mismatches);
  m.GetCounter("kv.crash_recoveries").Add(crash_recoveries);
  m.GetCounter("kv.wal_replayed").Add(wal_replayed);
  m.GetCounter("kv.wal_lost").Add(wal_lost);
  m.GetCounter("kv.tables_dropped").Add(tables_dropped);
  m.GetGauge("kv.write_amplification").Set(WriteAmplification());
}

KvStore::KvStore(sim::Simulator& s, hostif::Stack& stack, Options opt)
    : sim_(s),
      stack_(stack),
      opt_(std::move(opt)),
      lba_bytes_(stack.info().format.lba_bytes),
      alloc_lock_(s, 1),
      gc_lock_(s, 1),
      compact_io_(s, 1),
      flush_done_(s),
      compact_done_(s),
      wal_quiet_(s),
      idle_(s),
      workers_(s) {
  ZSTOR_CHECK(stack_.info().zoned);
  // Two WAL segments + hot open + cold open + one spare for reclaim.
  ZSTOR_CHECK(opt_.zone_count >= 5);
  ZSTOR_CHECK(opt_.first_zone + opt_.zone_count <= stack_.info().num_zones);
  ZSTOR_CHECK(opt_.max_levels >= 2);
  ZSTOR_CHECK(opt_.l0_compact_trigger >= 1);
  ZSTOR_CHECK(opt_.l0_stall_limit >= opt_.l0_compact_trigger);
  ZSTOR_CHECK(opt_.max_append_lbas > 0);
  ZSTOR_CHECK(opt_.compact_read_lbas > 0);
  ZSTOR_CHECK(opt_.free_zone_low >= 1);
  // A memtable's WAL must fit one log segment with slack (the WAL-full
  // check also rotates early, but the shape should be sane up front).
  ZSTOR_CHECK_MSG(opt_.memtable_bytes * 2 <= zone_cap_lbas() * lba_bytes_,
                  "memtable_bytes too large for one WAL segment");
  zones_.resize(opt_.zone_count - 2);
  for (std::uint32_t z = opt_.first_zone + 2;
       z < opt_.first_zone + opt_.zone_count; ++z) {
    zones_[ZoneIndex(z)].zone = z;
    free_zones_.push_back(z);
  }
  levels_.resize(opt_.max_levels);
  levels_stats_.resize(opt_.max_levels);
}

KvStore::~KvStore() { stopping_ = true; }

bool KvStore::IsZoneWriteFailure(Status s) {
  return s == Status::kZoneIsFull || s == Status::kZoneIsReadOnly ||
         s == Status::kZoneIsOffline || s == Status::kTooManyActiveZones ||
         s == Status::kTooManyOpenZones || s == Status::kWriteProhibited ||
         s == Status::kZoneInvalidWrite;
}

nvme::Lba KvStore::ZoneStartLba(std::uint32_t zone) const {
  return static_cast<nvme::Lba>(zone) * stack_.info().zone_size_lbas;
}

std::uint64_t KvStore::zone_cap_lbas() const {
  return stack_.info().zone_cap_lbas;
}

std::uint32_t KvStore::EntryLbas(std::uint64_t bytes) const {
  if (bytes == 0) return 1;
  return static_cast<std::uint32_t>((bytes + lba_bytes_ - 1) / lba_bytes_);
}

KvStore::ZoneClass KvStore::ClassForLevel(std::uint32_t level) const {
  if (!opt_.lifetime_placement) return ZoneClass::kHot;
  return level <= 1 ? ZoneClass::kHot : ZoneClass::kCold;
}

std::uint64_t KvStore::LevelTargetBytes(std::uint32_t level) const {
  double target = static_cast<double>(opt_.level1_bytes);
  for (std::uint32_t l = 1; l < level; ++l) target *= opt_.level_mult;
  return static_cast<std::uint64_t>(target);
}

double KvStore::ZoneGarbage(const ZoneInfo& zi) const {
  if (zi.written_lbas == 0) return 0.0;
  return static_cast<double>(zi.written_lbas - zi.live_lbas) /
         static_cast<double>(zi.written_lbas);
}

sim::Task<> KvStore::Pace(std::uint64_t bytes) {
  if (opt_.compact_rate_mibps <= 0.0) co_return;
  const double ns =
      static_cast<double>(bytes) * 1e9 / (opt_.compact_rate_mibps * 1048576.0);
  co_await sim_.Delay(static_cast<sim::Time>(ns));
}

// ---------------------------------------------------------------------------
// Write path.
// ---------------------------------------------------------------------------

sim::Task<Status> KvStore::Put(std::uint64_t key, std::uint64_t value_bytes) {
  return PutInternal(key, value_bytes, /*tombstone=*/false);
}

sim::Task<Status> KvStore::Delete(std::uint64_t key) {
  return PutInternal(key, 0, /*tombstone=*/true);
}

sim::Task<> KvStore::StallForRoom() {
  const sim::Time t0 = sim_.now();
  for (;;) {
    if (imm_ != nullptr && mem_bytes_ >= opt_.memtable_bytes) {
      co_await flush_done_.Wait();
      continue;
    }
    if (levels_[0].size() >= opt_.l0_stall_limit) {
      co_await compact_done_.Wait();
      continue;
    }
    break;
  }
  if (sim_.now() > t0) stats_.write_stall_ns += sim_.now() - t0;
}

sim::Task<Status> KvStore::PutInternal(std::uint64_t key, std::uint64_t bytes,
                                       bool tombstone) {
  co_await StallForRoom();
  const std::uint32_t lbas = EntryLbas(bytes + kWalHeaderBytes);
  ZSTOR_CHECK_MSG(lbas <= zone_cap_lbas(), "value larger than a log zone");
  // Rotate (stalling on the in-flight flush if needed) until the record
  // fits the active log segment.
  while (wal_used_lbas_[wal_segment_] + lbas > zone_cap_lbas()) {
    const sim::Time t0 = sim_.now();
    while (imm_ != nullptr) co_await flush_done_.Wait();
    if (sim_.now() > t0) stats_.write_stall_ns += sim_.now() - t0;
    if (wal_used_lbas_[wal_segment_] + lbas <= zone_cap_lbas()) break;
    ZSTOR_CHECK(!mem_.empty());  // a used segment implies memtable entries
    DoRotate();
  }
  WalRecord rec;
  rec.key = key;
  rec.bytes = bytes;
  rec.seq = next_seq_++;
  rec.tombstone = tombstone;
  rec.segment = wal_segment_;
  rec.lbas = lbas;
  rec.tag_base = TakeTags(lbas);
  wal_used_lbas_[rec.segment] += lbas;
  wal_.push_back(rec);
  WalRecord& r = wal_.back();
  // Insert into the memtable before awaiting the append so a concurrent
  // rotation moves this entry together with its generation's segment.
  MemValue& mv = mem_[key];
  if (r.seq >= mv.seq) mv = MemValue{bytes, r.seq, tombstone};
  mem_bytes_ += bytes + kWalHeaderBytes;
  if (tombstone) {
    stats_.deletes++;
  } else {
    stats_.puts++;
    stats_.user_bytes += bytes;
  }
  wal_pending_[r.segment]++;
  const Status st = co_await WalAppend(r);
  if (--wal_pending_[r.segment] == 0) wal_quiet_.NotifyAll();
  MaybeRotateMemtable();
  co_return st;
}

sim::Task<Status> KvStore::WalAppend(WalRecord& rec) {
  auto tc = co_await stack_.Submit(
      {.opcode = Opcode::kAppend,
       .slba = ZoneStartLba(opt_.first_zone + rec.segment),
       .nlb = rec.lbas,
       .payload_tag = rec.tag_base});
  if (!tc.completion.ok()) co_return tc.completion.status;
  rec.acked = true;
  rec.lba = tc.completion.result_lba;
  rec.epoch = Epoch();
  stats_.wal_appends++;
  stats_.wal_bytes += static_cast<std::uint64_t>(rec.lbas) * lba_bytes_;
  co_return Status::kSuccess;
}

void KvStore::MaybeRotateMemtable() {
  if (imm_ != nullptr || mem_.empty()) return;
  if (mem_bytes_ < opt_.memtable_bytes) return;
  DoRotate();
}

void KvStore::DoRotate() {
  ZSTOR_CHECK(imm_ == nullptr);
  imm_ = std::make_unique<Memtable>(std::move(mem_));
  mem_.clear();
  mem_bytes_ = 0;
  imm_first_seq_ = mem_first_seq_;
  imm_last_seq_ = next_seq_;
  imm_segment_ = wal_segment_;
  mem_first_seq_ = next_seq_;
  wal_segment_ ^= 1;
  // The incoming segment was reset when ITS previous memtable flushed.
  ZSTOR_CHECK(wal_used_lbas_[wal_segment_] == 0);
  stats_.memtable_rotations++;
  if (!flush_busy_) {
    flush_busy_ = true;
    workers_.Add();
    sim::Spawn(FlushJob());
  }
}

sim::Task<> KvStore::FlushJob() {
  while (imm_ != nullptr && !stopping_) {
    const sim::Time t0 = sim_.now();
    std::vector<TableEntry> entries;
    entries.reserve(imm_->size());
    for (const auto& [k, v] : *imm_) {
      entries.push_back(TableEntry{k, v.bytes, v.seq, v.tombstone});
    }
    TablePtr t;
    co_await BuildTable(std::move(entries), 0, /*paced=*/false, &t);
    if (t->write_failed) {
      // Appends outran the retry budget (a power outage in progress).
      // Drop the partial table and retry: the data is still in imm_ and
      // its WAL segment, so nothing is lost yet.
      DropTable(t);
      co_await sim_.Delay(sim::Microseconds(500));
      continue;
    }
    stats_.flush_bytes +=
        static_cast<std::uint64_t>(t->data_lbas) * lba_bytes_;
    auto fc = co_await stack_.Submit({.opcode = Opcode::kFlush});
    t->durable = fc.completion.ok() && Epoch() == t->write_epoch;
    if (t->durable) {
      // WAL checkpoint: the flushed generation's records are durable in
      // the SSTable; quiesce in-flight appends to the segment, then
      // reset it for the generation after next.
      const std::uint8_t seg = imm_segment_;
      for (WalRecord& r : wal_) {
        if (r.seq < imm_last_seq_) r.durable = true;
      }
      while (wal_pending_[seg] > 0) co_await wal_quiet_.Wait();
      for (int attempt = 0; attempt < 50; ++attempt) {
        auto rc = co_await stack_.Submit(
            {.opcode = Opcode::kZoneMgmtSend,
             .slba = ZoneStartLba(opt_.first_zone + seg),
             .zone_action = ZoneAction::kReset});
        if (rc.completion.ok()) break;
        ZSTOR_CHECK_MSG(attempt < 49, "WAL segment reset kept failing");
        co_await sim_.Delay(sim::Microseconds(500));
      }
      wal_used_lbas_[seg] = 0;
      stats_.wal_resets++;
      while (!wal_.empty() && wal_.front().seq < imm_last_seq_) {
        wal_.pop_front();
      }
    }
    InstallTable(t, 0);
    imm_.reset();
    imm_first_seq_ = 0;
    stats_.flushes++;
    if (telem_ != nullptr) {
      telem_->tracer().Span(t0, sim_.now(), telemetry::Tracer::NextCmdId(),
                            telemetry::Layer::kWorkload, "kv.flush",
                            static_cast<std::int64_t>(t->data_bytes), 0);
      if (auto* tl = telem_->timeline()) {
        tl->Window(t0, sim_.now() - t0, telem_->timeline_label(), 0,
                   "kv.flush", static_cast<std::int64_t>(t->data_bytes), 0);
      }
    }
    flush_done_.NotifyAll();
    MaybeScheduleCompaction();
    MaybeScheduleReclaim();
  }
  flush_busy_ = false;
  workers_.Done();
  idle_.NotifyAll();
}

// ---------------------------------------------------------------------------
// SSTable construction and zone allocation.
// ---------------------------------------------------------------------------

sim::Task<> KvStore::BuildTable(std::vector<TableEntry> entries,
                                std::uint32_t level, bool paced,
                                TablePtr* out) {
  auto t = std::make_shared<SsTable>();
  t->id = next_table_id_++;
  t->level = level;
  t->entries = std::move(entries);
  t->lba_off.reserve(t->entries.size());
  for (const TableEntry& e : t->entries) {
    t->lba_off.push_back(t->data_lbas);
    t->data_lbas += EntryLbas(e.bytes);
    t->data_bytes += e.bytes;
  }
  ZSTOR_CHECK(!t->entries.empty());
  t->min_key = t->entries.front().key;
  t->max_key = t->entries.back().key;
  t->write_epoch = Epoch();
  const std::uint64_t tag0 = TakeTags(t->data_lbas);
  std::uint32_t off = 0;
  while (off < t->data_lbas) {
    const std::uint32_t chunk =
        std::min<std::uint32_t>(opt_.max_append_lbas, t->data_lbas - off);
    if (paced) co_await Pace(static_cast<std::uint64_t>(chunk) * lba_bytes_);
    Extent e = co_await AppendChunk(ClassForLevel(level), chunk, tag0 + off);
    if (e.lbas == 0) {
      t->write_failed = true;
      break;
    }
    t->extents.push_back(e);
    off += e.lbas;
  }
  stats_.tables_written++;
  *out = std::move(t);
}

sim::Task<KvStore::Extent> KvStore::AppendChunk(ZoneClass cls,
                                                std::uint32_t lbas,
                                                std::uint64_t tag_base) {
  const int ci = static_cast<int>(cls);
  for (int attempt = 0; attempt < 8; ++attempt) {
    std::uint32_t zone = 0;
    std::uint32_t take = 0;
    {
      // Reserve capacity under the allocator lock; the append itself
      // runs outside it so appends to one zone overlap (R2).
      auto g = co_await alloc_lock_.Acquire();
      while (open_zone_[ci] < 0) {
        open_zone_[ci] = static_cast<std::int64_t>(co_await TakeOpenZone(cls));
      }
      ZoneInfo& zi = zones_[ZoneIndex(static_cast<std::uint32_t>(
          open_zone_[ci]))];
      const std::uint64_t remaining = zone_cap_lbas() - zi.written_lbas;
      if (remaining == 0) {
        // Appended to capacity: the zone sealed itself (R3 — no finish).
        zi.open = false;
        open_zone_[ci] = -1;
        continue;
      }
      take = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(lbas, remaining));
      zi.written_lbas += take;
      zi.live_lbas += take;
      zone = zi.zone;
    }
    auto tc = co_await stack_.Submit({.opcode = Opcode::kAppend,
                                      .slba = ZoneStartLba(zone),
                                      .nlb = take,
                                      .payload_tag = tag_base});
    const Status st = tc.completion.status;
    if (tc.completion.ok()) {
      co_return Extent{zone, tc.completion.result_lba, take, tag_base};
    }
    ZoneInfo& zi = zones_[ZoneIndex(zone)];
    zi.live_lbas -= take;
    if (IsZoneWriteFailure(st)) {
      // The zone is unusable (degraded or our accounting ran ahead of a
      // crash rollback): poison it and reroute to a fresh zone.
      zi.written_lbas = zone_cap_lbas();
      zi.open = false;
      if (open_zone_[ci] == static_cast<std::int64_t>(zone)) {
        open_zone_[ci] = -1;
      }
      continue;
    }
    // Retry budget spent (power outage): leave the reservation in place
    // (the device may have landed the data) and report failure.
    co_return Extent{zone, 0, 0, tag_base};
  }
  co_return Extent{0, 0, 0, tag_base};
}

sim::Task<std::uint32_t> KvStore::TakeOpenZone(ZoneClass cls) {
  (void)cls;
  if (free_zones_.empty()) {
    co_await ReclaimZones(/*need_free=*/true);
  }
  ZSTOR_CHECK_MSG(!free_zones_.empty(), "kv store out of zones");
  const std::uint32_t zone = free_zones_.front();
  free_zones_.pop_front();
  ZoneInfo& zi = zones_[ZoneIndex(zone)];
  ZSTOR_CHECK(zi.written_lbas == 0 && zi.live_lbas == 0);
  zi.open = true;
  co_return zone;
}

sim::Task<> KvStore::ResetZone(std::uint32_t zone) {
  auto tc = co_await stack_.Submit({.opcode = Opcode::kZoneMgmtSend,
                                    .slba = ZoneStartLba(zone),
                                    .zone_action = ZoneAction::kReset});
  ZoneInfo& zi = zones_[ZoneIndex(zone)];
  if (!tc.completion.ok()) {
    // Leave the zone sealed-and-dead; a later reclaim pass retries.
    zi.written_lbas = zone_cap_lbas();
    zi.live_lbas = 0;
    zi.open = false;
    co_return;
  }
  zi.written_lbas = 0;
  zi.live_lbas = 0;
  zi.open = false;
  free_zones_.push_back(zone);
  stats_.zone_resets++;
}

// ---------------------------------------------------------------------------
// Zone reclamation (GC).
// ---------------------------------------------------------------------------

void KvStore::MaybeScheduleReclaim() {
  const bool dead_zone = std::any_of(
      zones_.begin(), zones_.end(), [&](const ZoneInfo& z) {
        return !z.open && z.written_lbas > 0 && z.live_lbas == 0;
      });
  const bool low = free_zones_.size() < opt_.free_zone_low;
  if (!dead_zone && !low) return;
  if (gc_busy_) return;
  gc_busy_ = true;
  workers_.Add();
  sim::Spawn(ReclaimJob(low));
}

sim::Task<> KvStore::ReclaimJob(bool need_free) {
  co_await ReclaimZones(need_free);
  gc_busy_ = false;
  workers_.Done();
  idle_.NotifyAll();
}

sim::Task<> KvStore::ReclaimZones(bool need_free) {
  auto g = co_await gc_lock_.Acquire();
  const sim::Time t0 = sim_.now();
  std::uint64_t relocated0 = stats_.gc_relocated_bytes;
  std::uint64_t resets0 = stats_.zone_resets;
  stats_.gc_passes++;
  for (;;) {
    // Phase 1 (cheap): reset every sealed zone with no live data. With
    // lifetime placement on, hot zones die wholesale and this is the
    // common exit.
    bool reset_any = false;
    for (ZoneInfo& zi : zones_) {
      if (!zi.open && zi.written_lbas > 0 && zi.live_lbas == 0) {
        co_await ResetZone(zi.zone);
        reset_any = true;
      }
    }
    if (!need_free || free_zones_.size() >= opt_.free_zone_low) break;
    if (reset_any) continue;
    // Phase 2 (expensive): relocate the live remnant of the dirtiest
    // sealed zone, then reset it. This is the relocation traffic
    // placement-off pays and placement-on mostly avoids.
    std::int64_t victim = -1;
    double best = opt_.gc_garbage_min;
    for (std::size_t i = 0; i < zones_.size(); ++i) {
      const ZoneInfo& zi = zones_[i];
      // Any sealed, non-empty zone is a candidate (a partially-written
      // sealed zone — e.g. left behind by crash recovery — still pins
      // its live data).
      if (zi.open || zi.written_lbas == 0) continue;
      const double garbage = ZoneGarbage(zi);
      if (garbage >= best) {
        best = garbage;
        victim = static_cast<std::int64_t>(i);
      }
    }
    if (victim < 0 && !free_zones_.empty()) break;  // nothing reclaimable
    ZSTOR_CHECK_MSG(victim >= 0, "kv store out of space: no GC victim");
    const std::uint32_t vzone = zones_[victim].zone;
    // Snapshot the tables holding live extents in the victim, then move
    // each table's victim-resident runs elsewhere.
    // Tables claimed by a running compaction keep their extents pinned
    // (the compactor is reading them); claim the rest so compaction
    // can't drop a table out from under the relocation loop.
    std::vector<TablePtr> holders;
    for (auto& level : levels_) {
      for (const TablePtr& t : level) {
        if (t->compacting) continue;
        for (const Extent& e : t->extents) {
          if (e.zone == vzone) {
            holders.push_back(t);
            t->compacting = true;
            break;
          }
        }
      }
    }
    const std::uint64_t reloc_before = stats_.gc_relocated_bytes;
    for (const TablePtr& t : holders) {
      co_await RelocateTablePart(t, vzone);
      t->compacting = false;
    }
    if (zones_[victim].live_lbas == 0) {
      co_await ResetZone(vzone);
    } else if (stats_.gc_relocated_bytes == reloc_before) {
      // Nothing moved and nothing freed: every live extent in the victim
      // belongs to a table claimed by the running compaction. Looping
      // again would spin without a single co_await (starving the very
      // compactor we are waiting on — the scheduler is cooperative), and
      // parking on compact_done_ here would deadlock if the compactor is
      // itself inside TakeOpenZone waiting for gc_lock_. End the pass:
      // the compaction's own writes re-trigger reclaim once it finishes.
      ZSTOR_CHECK_MSG(!free_zones_.empty(),
                      "kv store wedged: no free zones and every GC victim "
                      "is pinned by a running compaction");
      break;
    }
  }
  if (telem_ != nullptr &&
      (stats_.gc_relocated_bytes != relocated0 ||
       stats_.zone_resets != resets0)) {
    if (auto* tl = telem_->timeline()) {
      tl->Window(t0, sim_.now() - t0, telem_->timeline_label(), 0, "kv.gc",
                 static_cast<std::int64_t>(stats_.gc_relocated_bytes -
                                           relocated0),
                 static_cast<std::int64_t>(stats_.zone_resets - resets0));
    }
  }
}

sim::Task<> KvStore::RelocateTablePart(TablePtr t, std::uint32_t victim) {
  if (t->dropped) co_return;
  std::vector<Extent> rebuilt;
  for (const Extent& e : t->extents) {
    if (e.zone != victim) {
      rebuilt.push_back(e);
      continue;
    }
    // Read the live run, rewrite it into the relocation zone (chunked),
    // and splice the replacement extents in place.
    std::uint32_t off = 0;
    while (off < e.lbas) {
      const std::uint32_t chunk =
          std::min<std::uint32_t>(opt_.compact_read_lbas, e.lbas - off);
      co_await ReadExtentRange(e, off, chunk, /*verify_tags=*/false, nullptr);
      co_await Pace(static_cast<std::uint64_t>(chunk) * lba_bytes_);
      off += chunk;
    }
    std::uint32_t wrote = 0;
    const std::uint64_t tag0 = TakeTags(e.lbas);
    while (wrote < e.lbas) {
      const std::uint32_t chunk =
          std::min<std::uint32_t>(opt_.max_append_lbas, e.lbas - wrote);
      co_await Pace(static_cast<std::uint64_t>(chunk) * lba_bytes_);
      Extent ne = co_await RelocAppend(chunk, tag0 + wrote);
      ZSTOR_CHECK_MSG(ne.lbas > 0, "relocation append failed");
      rebuilt.push_back(ne);
      wrote += ne.lbas;
      stats_.gc_relocated_bytes +=
          static_cast<std::uint64_t>(ne.lbas) * lba_bytes_;
    }
    ZoneInfo& vz = zones_[ZoneIndex(victim)];
    vz.live_lbas -= e.lbas;
  }
  t->extents = std::move(rebuilt);
}

sim::Task<KvStore::Extent> KvStore::RelocAppend(std::uint32_t lbas,
                                                std::uint64_t tag_base) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    if (reloc_zone_ < 0) {
      ZSTOR_CHECK_MSG(!free_zones_.empty(),
                      "kv store out of zones for relocation");
      reloc_zone_ = static_cast<std::int64_t>(free_zones_.front());
      free_zones_.pop_front();
      zones_[ZoneIndex(static_cast<std::uint32_t>(reloc_zone_))].open = true;
    }
    ZoneInfo& zi = zones_[ZoneIndex(static_cast<std::uint32_t>(reloc_zone_))];
    const std::uint64_t remaining = zone_cap_lbas() - zi.written_lbas;
    if (remaining == 0) {
      zi.open = false;
      reloc_zone_ = -1;
      continue;
    }
    const std::uint32_t take =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(lbas, remaining));
    zi.written_lbas += take;
    zi.live_lbas += take;
    auto tc = co_await stack_.Submit({.opcode = Opcode::kAppend,
                                      .slba = ZoneStartLba(zi.zone),
                                      .nlb = take,
                                      .payload_tag = tag_base});
    if (tc.completion.ok()) {
      co_return Extent{zi.zone, tc.completion.result_lba, take, tag_base};
    }
    zi.live_lbas -= take;
    zi.written_lbas = zone_cap_lbas();
    zi.open = false;
    reloc_zone_ = -1;
  }
  co_return Extent{0, 0, 0, tag_base};
}

// ---------------------------------------------------------------------------
// Compaction.
// ---------------------------------------------------------------------------

void KvStore::MaybeScheduleCompaction() {
  if (compact_busy_ || stopping_) return;
  CompactionJob probe;
  if (!PickCompaction(&probe)) return;
  for (const TablePtr& t : probe.inputs) t->compacting = false;  // unclaim
  compact_busy_ = true;
  workers_.Add();
  sim::Spawn(CompactJob());
}

sim::Task<> KvStore::CompactJob() {
  while (!stopping_) {
    CompactionJob job;
    if (!PickCompaction(&job)) break;
    co_await RunCompaction(std::move(job));
    compact_done_.NotifyAll();
  }
  compact_busy_ = false;
  workers_.Done();
  idle_.NotifyAll();
}

bool KvStore::PickCompaction(CompactionJob* job) {
  // L0 first: overlapping tables pile up and stall writers.
  if (levels_[0].size() >= opt_.l0_compact_trigger) {
    job->from_level = 0;
    std::uint64_t lo = ~0ull, hi = 0;
    for (const TablePtr& t : levels_[0]) {
      if (t->compacting) continue;
      job->inputs.push_back(t);
      lo = std::min(lo, t->min_key);
      hi = std::max(hi, t->max_key);
    }
    if (!job->inputs.empty()) {
      for (const TablePtr& t : levels_[1]) {
        if (!t->compacting && t->min_key <= hi && t->max_key >= lo) {
          job->inputs.push_back(t);
        }
      }
      for (const TablePtr& t : job->inputs) t->compacting = true;
      return true;
    }
    job->inputs.clear();
  }
  // Deeper levels: size-triggered, zone-garbage-aware victim choice —
  // prefer the table whose zones hold the most dead data, so compacting
  // it turns those zones resettable without relocation.
  for (std::uint32_t l = 1; l + 1 < opt_.max_levels; ++l) {
    if (levels_stats_[l].bytes <= LevelTargetBytes(l)) continue;
    TablePtr victim;
    double best_score = -1.0;
    for (const TablePtr& t : levels_[l]) {
      if (t->compacting) continue;
      std::uint64_t total = 0;
      double weighted = 0.0;
      for (const Extent& e : t->extents) {
        weighted += ZoneGarbage(zones_[ZoneIndex(e.zone)]) * e.lbas;
        total += e.lbas;
      }
      const double score = total == 0 ? 0.0 : weighted / total;
      if (score > best_score ||
          (score == best_score && victim != nullptr && t->id < victim->id)) {
        best_score = score;
        victim = t;
      }
    }
    if (victim == nullptr) continue;
    job->from_level = l;
    job->inputs.push_back(victim);
    for (const TablePtr& t : levels_[l + 1]) {
      if (!t->compacting && t->min_key <= victim->max_key &&
          t->max_key >= victim->min_key) {
        job->inputs.push_back(t);
      }
    }
    for (const TablePtr& t : job->inputs) t->compacting = true;
    return true;
  }
  return false;
}

sim::Task<> KvStore::RunCompaction(CompactionJob job) {
  const sim::Time t0 = sim_.now();
  const std::uint32_t out_level = job.from_level + 1;
  std::uint64_t bytes_read = 0;
  // Read every input extent at iterator granularity, one at a time (the
  // background depth stays low so foreground reads keep their slots).
  {
    auto io = co_await compact_io_.Acquire();
    for (const TablePtr& t : job.inputs) {
      for (const Extent& e : t->extents) {
        std::uint32_t off = 0;
        while (off < e.lbas) {
          const std::uint32_t chunk =
              std::min<std::uint32_t>(opt_.compact_read_lbas, e.lbas - off);
          co_await ReadExtentRange(e, off, chunk, /*verify_tags=*/false,
                                   nullptr);
          co_await Pace(static_cast<std::uint64_t>(chunk) * lba_bytes_);
          bytes_read += static_cast<std::uint64_t>(chunk) * lba_bytes_;
          off += chunk;
        }
      }
    }
  }
  // Merge: newest sequence wins; tombstones fall out at the last level.
  std::vector<TableEntry> merged;
  for (const TablePtr& t : job.inputs) {
    merged.insert(merged.end(), t->entries.begin(), t->entries.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const TableEntry& a, const TableEntry& b) {
              if (a.key != b.key) return a.key < b.key;
              return a.seq > b.seq;
            });
  std::vector<TableEntry> out;
  out.reserve(merged.size());
  const bool drop_tombstones = out_level == opt_.max_levels - 1;
  for (std::size_t i = 0; i < merged.size(); ++i) {
    if (i > 0 && merged[i].key == merged[i - 1].key) continue;
    if (merged[i].tombstone && drop_tombstones) continue;
    out.push_back(merged[i]);
  }
  // Cut output tables and write them (paced appends to the out level's
  // lifetime class).
  std::vector<TablePtr> outputs;
  bool failed = false;
  std::uint64_t bytes_written = 0;
  std::size_t i = 0;
  while (i < out.size() && !failed) {
    std::vector<TableEntry> chunk;
    std::uint64_t chunk_bytes = 0;
    while (i < out.size() && (chunk.empty() ||
                              chunk_bytes + out[i].bytes <=
                                  opt_.max_table_bytes)) {
      chunk_bytes += out[i].bytes;
      chunk.push_back(out[i]);
      ++i;
    }
    TablePtr t;
    co_await BuildTable(std::move(chunk), out_level, /*paced=*/true, &t);
    if (t->write_failed) {
      failed = true;
      DropTable(t);
      break;
    }
    bytes_written += static_cast<std::uint64_t>(t->data_lbas) * lba_bytes_;
    outputs.push_back(std::move(t));
  }
  if (failed) {
    for (const TablePtr& t : outputs) DropTable(t);
    for (const TablePtr& t : job.inputs) t->compacting = false;
    co_await sim_.Delay(sim::Microseconds(500));
    co_return;
  }
  // Durability for the new tables before the inputs go away.
  const std::uint64_t e0 = Epoch();
  auto fc = co_await stack_.Submit({.opcode = Opcode::kFlush});
  const bool durable = fc.completion.ok() && Epoch() == e0;
  for (const TablePtr& t : outputs) {
    t->durable = durable && t->write_epoch == e0;
    InstallTable(t, out_level);
  }
  for (const TablePtr& t : job.inputs) {
    auto& lvl = levels_[t->level];
    lvl.erase(std::remove(lvl.begin(), lvl.end(), t), lvl.end());
    DropTable(t);
  }
  stats_.compactions++;
  stats_.compact_bytes_read += bytes_read;
  stats_.compact_bytes_written += bytes_written;
  levels_stats_[out_level].bytes_compacted += bytes_written;
  levels_stats_[out_level].compactions++;
  if (telem_ != nullptr) {
    telem_->tracer().Span(t0, sim_.now(), telemetry::Tracer::NextCmdId(),
                          telemetry::Layer::kWorkload, "kv.compact",
                          static_cast<std::int64_t>(bytes_read),
                          static_cast<std::int64_t>(bytes_written));
    if (auto* tl = telem_->timeline()) {
      tl->Window(t0, sim_.now() - t0, telem_->timeline_label(), 0,
                 "kv.compact", static_cast<std::int64_t>(bytes_written),
                 static_cast<std::int64_t>(out_level));
    }
  }
  MaybeScheduleReclaim();
}

void KvStore::InstallTable(TablePtr t, std::uint32_t level) {
  t->level = level;
  t->installed = true;
  if (level == 0) {
    levels_[0].insert(levels_[0].begin(), t);  // newest first
  } else {
    auto& lvl = levels_[level];
    auto pos = std::lower_bound(lvl.begin(), lvl.end(), t,
                                [](const TablePtr& a, const TablePtr& b) {
                                  return a->min_key < b->min_key;
                                });
    lvl.insert(pos, t);
  }
  levels_stats_[level].tables++;
  levels_stats_[level].bytes += t->data_bytes;
  levels_stats_[level].bytes_in += t->data_bytes;
}

void KvStore::DropTable(const TablePtr& t) {
  if (t->dropped) return;
  t->dropped = true;
  for (const Extent& e : t->extents) {
    ZoneInfo& zi = zones_[ZoneIndex(e.zone)];
    ZSTOR_CHECK(zi.live_lbas >= e.lbas);
    zi.live_lbas -= e.lbas;
  }
  if (t->installed) {
    LevelStats& ls = levels_stats_[t->level];
    ZSTOR_CHECK(ls.tables > 0);
    ls.tables--;
    ls.bytes -= t->data_bytes;
    stats_.tables_deleted++;
  }
}

// ---------------------------------------------------------------------------
// Read path.
// ---------------------------------------------------------------------------

const KvStore::TableEntry* KvStore::FindInTable(const TablePtr& t,
                                                std::uint64_t key) const {
  if (key < t->min_key || key > t->max_key) return nullptr;
  auto it = std::lower_bound(t->entries.begin(), t->entries.end(), key,
                             [](const TableEntry& e, std::uint64_t k) {
                               return e.key < k;
                             });
  if (it == t->entries.end() || it->key != key) return nullptr;
  return &*it;
}

sim::Task<Status> KvStore::ReadExtentRange(
    const Extent& e, std::uint32_t lba_off, std::uint32_t lbas,
    bool verify_tags, workload::IntegrityVerifier::Report* rep) {
  auto tc = co_await stack_.Submit(
      {.opcode = Opcode::kRead,
       .slba = e.lba + lba_off,
       .nlb = lbas,
       .payload_tag = verify_tags ? e.tag_base + lba_off : 0});
  stats_.read_ios++;
  if (!tc.completion.ok()) {
    if (rep != nullptr) rep->read_errors += lbas;
    co_return tc.completion.status;
  }
  if (verify_tags) {
    for (std::uint32_t j = 0; j < lbas; ++j) {
      const std::uint64_t want = e.tag_base + lba_off + j;
      const std::uint64_t got = j < tc.completion.payload_tags.size()
                                    ? tc.completion.payload_tags[j]
                                    : 0;
      if (rep != nullptr) {
        rep->lbas_checked++;
        rep->bytes_verified += lba_bytes_;
        if (got == want) {
          rep->exact++;
        } else {
          rep->silent_corruptions++;
        }
      } else if (got != want) {
        stats_.read_tag_mismatches++;
      }
    }
  }
  co_return Status::kSuccess;
}

sim::Task<Status> KvStore::ReadEntry(const TablePtr& t, std::size_t idx) {
  const std::uint32_t first = t->lba_off[idx];
  std::uint32_t want = EntryLbas(t->entries[idx].bytes);
  // Walk the extent list to the entry's position and read it (an entry
  // may straddle an extent split).
  std::uint32_t pos = 0;
  Status st = Status::kSuccess;
  for (const Extent& e : t->extents) {
    if (pos + e.lbas <= first) {
      pos += e.lbas;
      continue;
    }
    const std::uint32_t off = first > pos ? first - pos : 0;
    const std::uint32_t take = std::min<std::uint32_t>(e.lbas - off, want);
    const bool verify = !t->dropped;
    Status s = co_await ReadExtentRange(e, off, take, verify, nullptr);
    if (s != Status::kSuccess) st = s;
    want -= take;
    pos += e.lbas;
    if (want == 0) break;
  }
  co_return st;
}

sim::Task<Status> KvStore::Get(std::uint64_t key, bool* found) {
  stats_.gets++;
  if (found != nullptr) *found = false;
  // Memtables first: no device I/O.
  if (auto it = mem_.find(key); it != mem_.end()) {
    if (it->second.tombstone) {
      stats_.missing++;
    } else {
      stats_.found++;
      if (found != nullptr) *found = true;
    }
    co_return Status::kSuccess;
  }
  if (imm_ != nullptr) {
    if (auto it = imm_->find(key); it != imm_->end()) {
      if (it->second.tombstone) {
        stats_.missing++;
      } else {
        stats_.found++;
        if (found != nullptr) *found = true;
      }
      co_return Status::kSuccess;
    }
  }
  // L0 newest-first (tables overlap), then one candidate per deeper
  // level (tables are disjoint and sorted).
  std::vector<TablePtr> probes;
  for (const TablePtr& t : levels_[0]) {
    if (FindInTable(t, key) != nullptr) {
      probes.push_back(t);
      break;
    }
  }
  if (probes.empty()) {
    for (std::uint32_t l = 1; l < opt_.max_levels; ++l) {
      const auto& lvl = levels_[l];
      auto it = std::upper_bound(lvl.begin(), lvl.end(), key,
                                 [](std::uint64_t k, const TablePtr& t) {
                                   return k < t->min_key;
                                 });
      if (it == lvl.begin()) continue;
      const TablePtr& t = *(it - 1);
      if (FindInTable(t, key) != nullptr) {
        probes.push_back(t);
        break;
      }
    }
  }
  if (probes.empty()) {
    stats_.missing++;
    co_return Status::kSuccess;
  }
  const TablePtr t = probes.front();
  const TableEntry* e = FindInTable(t, key);
  ZSTOR_CHECK(e != nullptr);
  const std::size_t idx = static_cast<std::size_t>(e - t->entries.data());
  const Status st = co_await ReadEntry(t, idx);
  if (e->tombstone) {
    stats_.missing++;
  } else {
    stats_.found++;
    if (found != nullptr) *found = true;
  }
  co_return st;
}

std::uint64_t KvStore::ApproxKeys() const {
  std::uint64_t n = mem_.size() + (imm_ != nullptr ? imm_->size() : 0);
  for (const auto& lvl : levels_) {
    for (const TablePtr& t : lvl) n += t->entries.size();
  }
  return n;
}

sim::Task<> KvStore::Drain() {
  for (;;) {
    MaybeScheduleCompaction();
    MaybeScheduleReclaim();
    if (!flush_busy_ && !compact_busy_ && !gc_busy_ && imm_ == nullptr) {
      break;
    }
    co_await idle_.Wait();
  }
  // Make the WAL tail durable: the memtable's records survive a crash
  // via replay once their appends leave the device's volatile buffer.
  co_await stack_.Submit({.opcode = Opcode::kFlush});
}

// ---------------------------------------------------------------------------
// Crash recovery.
// ---------------------------------------------------------------------------

sim::Task<std::vector<nvme::ZoneDescriptor>> KvStore::ReportZones() {
  for (int attempt = 0; attempt < 50; ++attempt) {
    auto tc = co_await stack_.Submit({.opcode = Opcode::kZoneMgmtRecv,
                                      .slba = ZoneStartLba(opt_.first_zone),
                                      .report_max = opt_.zone_count});
    if (tc.completion.ok()) co_return std::move(tc.completion.report);
    co_await sim_.Delay(sim::Microseconds(500));
  }
  ZSTOR_CHECK_MSG(false, "zone report kept failing after crash");
  co_return {};
}

sim::Task<workload::IntegrityVerifier::Report> KvStore::RecoverAfterCrash() {
  const sim::Time t0 = sim_.now();
  stats_.crash_recoveries++;
  workload::IntegrityVerifier::Report rep;
  // Quiesce background work first: jobs in flight will observe failed
  // I/O and retire (their tables stay non-durable and are handled here).
  co_await Drain();
  auto report = co_await ReportZones();
  ZSTOR_CHECK(report.size() >= opt_.zone_count);
  // Recovered write pointer (in-zone LBAs) per store zone.
  std::vector<std::uint64_t> wp(opt_.zone_count, 0);
  for (std::uint32_t i = 0; i < opt_.zone_count; ++i) {
    const auto& d = report[i];
    wp[i] = d.write_pointer >= d.zslba ? d.write_pointer - d.zslba : 0;
    wp[i] = std::min<std::uint64_t>(wp[i], zone_cap_lbas());
  }
  auto zone_wp = [&](std::uint32_t zone) {
    return wp[zone - opt_.first_zone];
  };
  // ---- SSTables: drop what was never durable, verify what was --------
  for (auto& lvl : levels_) {
    std::vector<TablePtr> keep;
    for (const TablePtr& t : lvl) {
      if (!t->durable) {
        // Un-certified table: the crash may have torn it. Its records
        // are still WAL-covered (checkpoint only follows durability),
        // so drop it and let replay resurrect the data.
        DropTable(t);
        stats_.tables_dropped++;
        continue;
      }
      bool torn = false;
      for (const Extent& e : t->extents) {
        const nvme::Lba zstart = ZoneStartLba(e.zone);
        const std::uint64_t in_zone = e.lba - zstart;
        if (in_zone + e.lbas > zone_wp(e.zone)) {
          const std::uint64_t lost =
              in_zone + e.lbas - std::max(in_zone, zone_wp(e.zone));
          rep.silent_corruptions += lost;  // durable data must survive
          rep.lbas_checked += lost;
          torn = true;
        }
      }
      if (torn) {
        DropTable(t);
        stats_.tables_dropped++;
        continue;
      }
      for (const Extent& e : t->extents) {
        std::uint32_t off = 0;
        while (off < e.lbas) {
          const std::uint32_t chunk = std::min<std::uint32_t>(
              opt_.max_append_lbas, e.lbas - off);
          co_await ReadExtentRange(e, off, chunk, /*verify_tags=*/true, &rep);
          off += chunk;
        }
      }
      keep.push_back(t);
    }
    lvl = std::move(keep);
  }
  // ---- WAL: classify and replay --------------------------------------
  std::vector<const WalRecord*> replay;
  for (const WalRecord& r : wal_) {
    if (r.durable) continue;  // covered by a verified durable table
    const std::uint64_t seg_wp = zone_wp(opt_.first_zone + r.segment);
    if (!r.acked) {
      // The put itself failed; nothing was promised.
      rep.lost_unflushed += r.lbas;
      stats_.wal_lost++;
      continue;
    }
    const std::uint64_t in_zone =
        r.lba - ZoneStartLba(opt_.first_zone + r.segment);
    if (in_zone + r.lbas > seg_wp) {
      // Wholly or partially beyond the durable prefix: an unflushed
      // write the crash legitimately dropped.
      rep.lost_unflushed += r.lbas;
      stats_.wal_lost++;
      continue;
    }
    Extent e{opt_.first_zone + r.segment, r.lba, r.lbas, r.tag_base};
    auto before = rep.silent_corruptions;
    co_await ReadExtentRange(e, 0, r.lbas, /*verify_tags=*/true, &rep);
    if (rep.silent_corruptions == before) replay.push_back(&r);
  }
  // Rebuild the memtable from the surviving records, newest seq wins.
  mem_.clear();
  mem_bytes_ = 0;
  imm_.reset();
  for (const WalRecord* r : replay) {
    MemValue& mv = mem_[r->key];
    if (r->seq >= mv.seq) mv = MemValue{r->bytes, r->seq, r->tombstone};
    mem_bytes_ += r->bytes + kWalHeaderBytes;
    stats_.wal_replayed++;
  }
  // ---- device state resync -------------------------------------------
  // Every partially-written data zone is treated as sealed (its
  // reservation accounting died with the power loss); live counts are
  // recomputed from the surviving tables.
  for (ZoneInfo& zi : zones_) {
    zi.written_lbas = zone_wp(zi.zone);
    zi.live_lbas = 0;
    zi.open = false;
  }
  for (const auto& lvl : levels_) {
    for (const TablePtr& t : lvl) {
      for (const Extent& e : t->extents) {
        zones_[ZoneIndex(e.zone)].live_lbas += e.lbas;
      }
    }
  }
  open_zone_[0] = open_zone_[1] = -1;
  reloc_zone_ = -1;
  free_zones_.clear();
  for (const ZoneInfo& zi : zones_) {
    if (zi.written_lbas == 0) free_zones_.push_back(zi.zone);
  }
  // ---- finish: flush the replayed memtable, restart the log ----------
  if (!mem_.empty()) {
    std::vector<TableEntry> entries;
    entries.reserve(mem_.size());
    for (const auto& [k, v] : *(&mem_)) {
      entries.push_back(TableEntry{k, v.bytes, v.seq, v.tombstone});
    }
    for (int attempt = 0;; ++attempt) {
      TablePtr t;
      co_await BuildTable(std::move(entries), 0, /*paced=*/false, &t);
      if (!t->write_failed) {
        const std::uint64_t e0 = Epoch();
        auto fc = co_await stack_.Submit({.opcode = Opcode::kFlush});
        if (fc.completion.ok() && Epoch() == e0 && t->write_epoch == e0) {
          t->durable = true;
          stats_.flush_bytes +=
              static_cast<std::uint64_t>(t->data_lbas) * lba_bytes_;
          InstallTable(t, 0);
          break;
        }
      }
      entries = t->entries;  // retry with the same contents
      DropTable(t);
      ZSTOR_CHECK_MSG(attempt < 50, "post-crash flush kept failing");
      co_await sim_.Delay(sim::Microseconds(500));
    }
    mem_.clear();
    mem_bytes_ = 0;
  }
  for (std::uint8_t seg = 0; seg < 2; ++seg) {
    if (zone_wp(opt_.first_zone + seg) == 0) {
      wal_used_lbas_[seg] = 0;
      continue;
    }
    for (int attempt = 0; attempt < 50; ++attempt) {
      auto rc = co_await stack_.Submit(
          {.opcode = Opcode::kZoneMgmtSend,
           .slba = ZoneStartLba(opt_.first_zone + seg),
           .zone_action = ZoneAction::kReset});
      if (rc.completion.ok()) break;
      ZSTOR_CHECK_MSG(attempt < 49, "post-crash WAL reset kept failing");
      co_await sim_.Delay(sim::Microseconds(500));
    }
    wal_used_lbas_[seg] = 0;
    stats_.wal_resets++;
  }
  wal_.clear();
  wal_segment_ = 0;
  mem_first_seq_ = next_seq_;
  imm_first_seq_ = 0;
  if (telem_ != nullptr) {
    telem_->tracer().Span(t0, sim_.now(), telemetry::Tracer::NextCmdId(),
                          telemetry::Layer::kWorkload, "kv.recover",
                          static_cast<std::int64_t>(rep.lbas_checked),
                          static_cast<std::int64_t>(rep.silent_corruptions));
    if (auto* tl = telem_->timeline()) {
      tl->Window(t0, sim_.now() - t0, telem_->timeline_label(), 0,
                 "kv.recover", static_cast<std::int64_t>(rep.lbas_checked),
                 static_cast<std::int64_t>(stats_.wal_replayed));
    }
  }
  co_return rep;
}

}  // namespace zstor::zkv
