// Virtual time for the discrete-event simulator.
//
// All simulated latencies are expressed in nanoseconds of virtual time.
// 64-bit nanoseconds cover ~584 years, far beyond any experiment.
#pragma once

#include <cstdint>

namespace zstor::sim {

/// Virtual-time instant or duration, in nanoseconds.
using Time = std::uint64_t;

inline constexpr Time kNanosecond = 1;
inline constexpr Time kMicrosecond = 1'000;
inline constexpr Time kMillisecond = 1'000'000;
inline constexpr Time kSecond = 1'000'000'000;

constexpr Time Nanoseconds(double n) { return static_cast<Time>(n); }
constexpr Time Microseconds(double us) {
  return static_cast<Time>(us * static_cast<double>(kMicrosecond));
}
constexpr Time Milliseconds(double ms) {
  return static_cast<Time>(ms * static_cast<double>(kMillisecond));
}
constexpr Time Seconds(double s) {
  return static_cast<Time>(s * static_cast<double>(kSecond));
}

constexpr double ToMicroseconds(Time t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}
constexpr double ToMilliseconds(Time t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}
constexpr double ToSeconds(Time t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

}  // namespace zstor::sim
