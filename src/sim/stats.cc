#include "sim/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>

#include "sim/check.h"

namespace zstor::sim {

void Welford::Record(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
}

double Welford::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Welford::stddev() const { return std::sqrt(variance()); }

double Welford::cv() const {
  return (n_ > 1 && mean_ != 0.0) ? stddev() / mean_ : 0.0;
}

LatencyHistogram::LatencyHistogram() : buckets_(kBuckets, 0) {}

int LatencyHistogram::BucketIndex(Time v) {
  if (v < kSubBuckets) return static_cast<int>(v);  // exact below 64 ns
  int msb = 63 - std::countl_zero(static_cast<std::uint64_t>(v));
  int octave = msb - kSubBucketBits + 1;
  int sub = static_cast<int>(v >> octave) - (kSubBuckets >> 1);
  int idx = kSubBuckets + (octave - 1) * (kSubBuckets >> 1) + sub;
  return std::min(idx, kBuckets - 1);
}

double LatencyHistogram::BucketMidpoint(int idx) {
  if (idx < kSubBuckets) return idx;
  int rel = idx - kSubBuckets;
  int octave = rel / (kSubBuckets >> 1) + 1;
  int sub = rel % (kSubBuckets >> 1) + (kSubBuckets >> 1);
  double lo = std::ldexp(static_cast<double>(sub), octave);
  double width = std::ldexp(1.0, octave);
  return lo + width / 2.0;
}

void LatencyHistogram::Record(Time latency_ns) {
  buckets_[static_cast<std::size_t>(BucketIndex(latency_ns))]++;
  moments_.Record(static_cast<double>(latency_ns));
}

double LatencyHistogram::Quantile(double q) const {
  ZSTOR_CHECK(q >= 0.0 && q <= 1.0);
  std::uint64_t total = moments_.count();
  if (total == 0) return std::numeric_limits<double>::quiet_NaN();
  // Rank of the q-th sample (1-based, nearest-rank definition).
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)];
    if (seen >= rank) return BucketMidpoint(i);
  }
  return moments_.max();
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[static_cast<std::size_t>(i)] +=
        other.buckets_[static_cast<std::size_t>(i)];
  }
  // Scalar moments: replay the other histogram's samples from bucket
  // midpoints. Counts stay exact; mean error is within bucket resolution.
  for (int i = 0; i < kBuckets; ++i) {
    std::uint64_t c = other.buckets_[static_cast<std::size_t>(i)];
    double mid = BucketMidpoint(i);
    for (std::uint64_t k = 0; k < c; ++k) moments_.Record(mid);
  }
}

void LatencyHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  moments_ = Welford{};
  interval_base_.clear();
  interval_base_count_ = 0;
}

LatencyHistogram::IntervalStats LatencyHistogram::TakeInterval() {
  IntervalStats s;
  s.count = moments_.count() - interval_base_count_;
  if (s.count > 0) {
    auto rank = [&](double q) {
      auto r = static_cast<std::uint64_t>(
          std::ceil(q * static_cast<double>(s.count)));
      return r == 0 ? 1 : r;
    };
    const std::uint64_t r50 = rank(0.50), r95 = rank(0.95), r99 = rank(0.99);
    double sum = 0.0;
    std::uint64_t seen = 0;
    int last_nonzero = 0;
    for (int i = 0; i < kBuckets; ++i) {
      std::uint64_t base =
          interval_base_.empty() ? 0
                                 : interval_base_[static_cast<std::size_t>(i)];
      std::uint64_t d = buckets_[static_cast<std::size_t>(i)] - base;
      if (d == 0) continue;
      double mid = BucketMidpoint(i);
      sum += mid * static_cast<double>(d);
      if (seen < r50 && seen + d >= r50) s.p50_ns = mid;
      if (seen < r95 && seen + d >= r95) s.p95_ns = mid;
      if (seen < r99 && seen + d >= r99) s.p99_ns = mid;
      seen += d;
      last_nonzero = i;
    }
    s.mean_ns = sum / static_cast<double>(s.count);
    s.max_ns = BucketMidpoint(last_nonzero);
  }
  interval_base_ = buckets_;
  interval_base_count_ = moments_.count();
  return s;
}

namespace {
std::string FormatNs(double ns) {
  char buf[48];
  if (ns >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.2fs", ns / 1e9);
  } else if (ns >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.2fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0fns", ns);
  }
  return buf;
}
}  // namespace

std::string LatencyHistogram::Summary() const {
  if (count() == 0) return "n=0";
  std::string out = "n=" + std::to_string(count());
  out += " mean=" + FormatNs(mean_ns());
  out += " p50=" + FormatNs(Quantile(0.50));
  out += " p95=" + FormatNs(Quantile(0.95));
  out += " p99=" + FormatNs(Quantile(0.99));
  out += " max=" + FormatNs(max_ns());
  return out;
}

TimeSeries::TimeSeries(Time bin_width) : bin_width_(bin_width) {
  ZSTOR_CHECK(bin_width > 0);
}

void TimeSeries::Record(Time when, double amount) {
  std::size_t bin = static_cast<std::size_t>(when / bin_width_);
  if (bin >= bins_.size()) bins_.resize(bin + 1, 0.0);
  bins_[bin] += amount;
}

void TimeSeries::Merge(const TimeSeries& other) {
  ZSTOR_CHECK(bin_width_ == other.bin_width_);
  if (other.bins_.size() > bins_.size()) bins_.resize(other.bins_.size(), 0.0);
  for (std::size_t i = 0; i < other.bins_.size(); ++i) {
    bins_[i] += other.bins_[i];
  }
}

double TimeSeries::BinRate(std::size_t i) const {
  return bins_[i] / ToSeconds(bin_width_);
}

std::vector<double> TimeSeries::Rates() const {
  std::vector<double> out(bins_.size());
  for (std::size_t i = 0; i < bins_.size(); ++i) out[i] = BinRate(i);
  return out;
}

Welford TimeSeries::RateMoments(std::size_t skip_bins) const {
  Welford w;
  for (std::size_t i = skip_bins; i < bins_.size(); ++i) w.Record(BinRate(i));
  return w;
}

}  // namespace zstor::sim
