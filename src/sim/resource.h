// Served resources: the building blocks for device-internal contention.
//
// FifoResource models a server pool (e.g. a NAND die, a DMA engine) with a
// fixed number of slots and FIFO admission. PriorityResource adds strict
// priority classes — the ZNS firmware command processor uses it so that
// host I/O commands always bypass queued background (reset) work, which is
// the mechanism behind the paper's Observations 12 and 13.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "sim/check.h"
#include "sim/simulator.h"

namespace zstor::sim {

/// RAII slot ownership for resources. Releases on destruction.
template <typename R>
class [[nodiscard]] SlotGuard {
 public:
  SlotGuard() = default;
  explicit SlotGuard(R* r) : res_(r) {}
  SlotGuard(SlotGuard&& o) noexcept : res_(std::exchange(o.res_, nullptr)) {}
  SlotGuard& operator=(SlotGuard&& o) noexcept {
    Release();
    res_ = std::exchange(o.res_, nullptr);
    return *this;
  }
  SlotGuard(const SlotGuard&) = delete;
  SlotGuard& operator=(const SlotGuard&) = delete;
  ~SlotGuard() { Release(); }

  void Release() {
    if (res_ != nullptr) std::exchange(res_, nullptr)->Release();
  }

 private:
  R* res_ = nullptr;
};

/// Multi-slot server with FIFO admission.
class FifoResource {
 public:
  using Guard = SlotGuard<FifoResource>;

  FifoResource(Simulator& s, std::uint32_t slots) : sim_(s), free_(slots) {
    ZSTOR_CHECK(slots > 0);
  }
  FifoResource(const FifoResource&) = delete;
  FifoResource& operator=(const FifoResource&) = delete;

  struct Awaiter {
    FifoResource& r;
    bool await_ready() {
      if (r.free_ == 0) return false;
      --r.free_;
      return true;
    }
    void await_suspend(std::coroutine_handle<> h) { r.waiters_.push_back(h); }
    Guard await_resume() { return Guard{&r}; }
  };

  /// Suspends until a slot is free; the returned guard holds the slot.
  Awaiter Acquire() { return Awaiter{*this}; }

  void Release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_.ResumeSoon(h);  // slot transfers to the waiter
    } else {
      ++free_;
    }
  }

  std::uint32_t free_slots() const { return free_; }
  std::size_t queue_length() const { return waiters_.size(); }

 private:
  Simulator& sim_;
  std::uint32_t free_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Multi-slot server with strict priority classes (0 = highest). Within a
/// class, admission is FIFO. A freed slot always goes to the highest
/// waiting class; there is no preemption of work already in service.
class PriorityResource {
 public:
  using Guard = SlotGuard<PriorityResource>;

  PriorityResource(Simulator& s, std::uint32_t slots,
                   std::uint32_t priority_levels = 2)
      : sim_(s), free_(slots), waiters_(priority_levels) {
    ZSTOR_CHECK(slots > 0);
    ZSTOR_CHECK(priority_levels > 0);
  }
  PriorityResource(const PriorityResource&) = delete;
  PriorityResource& operator=(const PriorityResource&) = delete;

  struct Awaiter {
    PriorityResource& r;
    std::uint32_t prio;
    bool await_ready() {
      if (r.free_ == 0) return false;
      // A free slot with waiters pending can only happen transiently; slots
      // are handed to waiters directly in Release(), so free_>0 implies no
      // queue and we may take the slot immediately.
      --r.free_;
      return true;
    }
    void await_suspend(std::coroutine_handle<> h) {
      r.waiters_[prio].push_back(h);
    }
    Guard await_resume() { return Guard{&r}; }
  };

  /// Suspends until a slot is granted to priority class `priority`.
  Awaiter Acquire(std::uint32_t priority) {
    ZSTOR_CHECK(priority < waiters_.size());
    return Awaiter{*this, priority};
  }

  void Release() {
    for (auto& q : waiters_) {
      if (!q.empty()) {
        auto h = q.front();
        q.pop_front();
        sim_.ResumeSoon(h);
        return;
      }
    }
    ++free_;
  }

  std::uint32_t free_slots() const { return free_; }
  std::size_t queue_length(std::uint32_t priority) const {
    return waiters_[priority].size();
  }
  std::size_t total_queued() const {
    std::size_t n = 0;
    for (const auto& q : waiters_) n += q.size();
    return n;
  }

 private:
  Simulator& sim_;
  std::uint32_t free_;
  std::vector<std::deque<std::coroutine_handle<>>> waiters_;
};

}  // namespace zstor::sim
