// Task<T>: the coroutine type all simulated processes are written in.
//
// Semantics:
//  * Eager start — the body runs until its first suspension as soon as the
//    coroutine function is called.
//  * Awaitable — `co_await some_task` suspends the caller until the task
//    completes, then yields its value. The awaited Task object owns the
//    frame and frees it when it goes out of scope (typically at the end of
//    the full expression for `co_await Foo()`).
//  * Detachable — `std::move(t).Detach()` turns the task into a free-running
//    process whose frame self-destructs on completion.
//
// Exceptions must not escape a task: the simulator has no meaningful way to
// unwind virtual time, so an escaping exception terminates the process.
//
// LIFETIME RULE for lambda coroutines: a coroutine lambda's captures live in
// the closure OBJECT, not the coroutine frame. Any capturing lambda used as
// a coroutine must outlive the coroutine (declare it in a scope enclosing
// Simulator::Run()). Never call a capturing lambda coroutine as a temporary
// and never declare one inside the loop that spawns it. Coroutine function
// PARAMETERS are copied into the frame and are always safe.
#pragma once

#include <coroutine>
#include <optional>
#include <utility>

#include "sim/check.h"

namespace zstor::sim {

template <typename T>
class Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation{};
  bool detached = false;
  bool done = false;

  std::suspend_never initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<P> h) noexcept {
      PromiseBase& p = h.promise();
      p.done = true;
      if (p.continuation) return p.continuation;
      if (p.detached) h.destroy();
      return std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept {
    ZSTOR_CHECK_MSG(false, "exception escaped a sim::Task");
  }
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_value(T v) { value = std::move(v); }
  };

  Task(Task&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&& o) noexcept {
    ZSTOR_CHECK(h_ == nullptr);
    h_ = std::exchange(o.h_, nullptr);
    return *this;
  }
  ~Task() {
    if (!h_) return;
    ZSTOR_CHECK_MSG(h_.promise().done,
                    "Task destroyed while still running (detach it?)");
    h_.destroy();
  }

  bool Done() const { return !h_ || h_.promise().done; }

  /// Releases ownership; the coroutine keeps running and frees itself.
  void Detach() && {
    ZSTOR_CHECK(h_ != nullptr);
    if (h_.promise().done) {
      h_.destroy();
    } else {
      h_.promise().detached = true;
    }
    h_ = nullptr;
  }

  // Awaiting a Task resumes the caller when the task finishes.
  bool await_ready() const noexcept { return h_.promise().done; }
  void await_suspend(std::coroutine_handle<> caller) noexcept {
    h_.promise().continuation = caller;
  }
  T await_resume() {
    ZSTOR_CHECK(h_.promise().value.has_value());
    return std::move(*h_.promise().value);
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  std::coroutine_handle<promise_type> h_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() {}
  };

  Task(Task&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&& o) noexcept {
    ZSTOR_CHECK(h_ == nullptr);
    h_ = std::exchange(o.h_, nullptr);
    return *this;
  }
  ~Task() {
    if (!h_) return;
    ZSTOR_CHECK_MSG(h_.promise().done,
                    "Task destroyed while still running (detach it?)");
    h_.destroy();
  }

  bool Done() const { return !h_ || h_.promise().done; }

  void Detach() && {
    ZSTOR_CHECK(h_ != nullptr);
    if (h_.promise().done) {
      h_.destroy();
    } else {
      h_.promise().detached = true;
    }
    h_ = nullptr;
  }

  bool await_ready() const noexcept { return h_.promise().done; }
  void await_suspend(std::coroutine_handle<> caller) noexcept {
    h_.promise().continuation = caller;
  }
  void await_resume() const noexcept {}

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  std::coroutine_handle<promise_type> h_;
};

/// Starts a free-running process (the idiomatic way to launch workers).
inline void Spawn(Task<> t) { std::move(t).Detach(); }

}  // namespace zstor::sim
