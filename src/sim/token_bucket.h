// Token-bucket rate limiter, used to reproduce fio's bandwidth rate
// limiting (the paper rate-limits write bandwidth to 0/250/750/1155 MiB/s
// in §III-F). Tokens are abstract units — the workload engine uses bytes.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>

#include "sim/check.h"
#include "sim/simulator.h"
#include "sim/task.h"

namespace zstor::sim {

class TokenBucket {
 public:
  /// `rate_per_sec` tokens accrue per simulated second, up to `burst`.
  TokenBucket(Simulator& s, double rate_per_sec, double burst)
      : sim_(s), rate_(rate_per_sec), burst_(burst), level_(burst) {
    ZSTOR_CHECK(rate_per_sec > 0);
    ZSTOR_CHECK(burst > 0);
  }
  TokenBucket(const TokenBucket&) = delete;
  TokenBucket& operator=(const TokenBucket&) = delete;

  struct Awaiter {
    TokenBucket& b;
    double n;
    bool await_ready() {
      if (!b.waiters_.empty()) return false;  // keep FIFO fairness
      b.Refill();
      if (b.level_ < n) return false;
      b.level_ -= n;
      return true;
    }
    void await_suspend(std::coroutine_handle<> h) {
      b.waiters_.push_back({n, h});
      if (!b.pump_scheduled_) b.SchedulePump();
    }
    void await_resume() const noexcept {}
  };

  /// Suspends until `n` tokens are available, then consumes them.
  /// Requests larger than the burst size are served when the bucket is
  /// full; the resulting debt delays later requests (rate stays exact).
  Awaiter Take(double n) {
    ZSTOR_CHECK(n > 0);
    return Awaiter{*this, n};
  }

  double level() {
    Refill();
    return level_;
  }

 private:
  struct Waiter {
    double n;
    std::coroutine_handle<> h;
  };

  void Refill() {
    Time now = sim_.now();
    if (now == last_) return;
    level_ += rate_ * ToSeconds(now - last_);
    if (level_ > burst_) level_ = burst_;
    last_ = now;
  }

  void SchedulePump() {
    Refill();
    const Waiter& w = waiters_.front();
    double need = w.n > burst_ ? burst_ : w.n;  // cap at achievable level
    double deficit = need - level_;
    Time wait = deficit <= 0 ? 0 : Seconds(deficit / rate_) + 1;
    pump_scheduled_ = true;
    sim_.ScheduleIn(wait, [this] { Pump(); });
  }

  void Pump() {
    pump_scheduled_ = false;
    Refill();
    while (!waiters_.empty()) {
      Waiter& w = waiters_.front();
      double need = w.n > burst_ ? burst_ : w.n;
      if (level_ < need) break;
      // Oversize requests (n > burst) leave the level negative: a debt that
      // delays later takers, preserving the long-run rate exactly.
      level_ -= w.n;
      sim_.ResumeSoon(w.h);
      waiters_.pop_front();
    }
    if (!waiters_.empty()) SchedulePump();
  }

  Simulator& sim_;
  double rate_;
  double burst_;
  double level_;
  Time last_ = 0;
  bool pump_scheduled_ = false;
  std::deque<Waiter> waiters_;
};

}  // namespace zstor::sim
