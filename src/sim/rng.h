// Deterministic pseudo-random numbers for workloads and service noise.
//
// xoshiro256** (Blackman & Vigna) seeded via splitmix64. Self-contained so
// that streams are bit-identical across standard libraries and platforms —
// experiment outputs must be reproducible from a seed alone.
#pragma once

#include <cmath>
#include <cstdint>

#include "sim/check.h"

namespace zstor::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n).
  std::uint64_t UniformU64(std::uint64_t n) {
    ZSTOR_CHECK(n > 0);
    // Lemire's nearly-divisionless bounded generation (rejection variant).
    std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
    for (;;) {
      std::uint64_t r = NextU64();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Standard normal via Box–Muller (one value per call; no caching, to
  /// keep the stream position a pure function of the call count).
  double Normal() {
    double u1 = UniformDouble();
    double u2 = UniformDouble();
    while (u1 <= 1e-300) u1 = UniformDouble();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(6.283185307179586 * u2);
  }

  /// Lognormal multiplier with median 1 and shape sigma: useful as
  /// multiplicative service-time noise (sigma ~0.03 gives a few % jitter).
  double LogNormalNoise(double sigma) { return std::exp(sigma * Normal()); }

  /// Exponential with the given mean.
  double Exponential(double mean) {
    double u = UniformDouble();
    while (u <= 1e-300) u = UniformDouble();
    return -mean * std::log(u);
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace zstor::sim
