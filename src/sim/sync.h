// Coroutine synchronization primitives for the simulator.
//
// All primitives are single-threaded (the simulator owns one logical
// thread of control); "blocking" means suspending the calling coroutine
// until another coroutine releases/pushes/signals. Waiters are resumed
// through the event loop (ResumeSoon) so native stacks stay shallow and
// wakeup order is deterministic FIFO.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <utility>

#include "sim/check.h"
#include "sim/simulator.h"

namespace zstor::sim {

/// Counting semaphore.
class Semaphore {
 public:
  Semaphore(Simulator& s, std::uint64_t initial)
      : sim_(s), count_(initial) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  struct Awaiter {
    Semaphore& sem;
    bool await_ready() {
      if (sem.count_ == 0) return false;
      --sem.count_;
      return true;
    }
    void await_suspend(std::coroutine_handle<> h) {
      sem.waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };

  /// Suspends until one unit is available, then takes it.
  Awaiter Acquire() { return Awaiter{*this}; }

  /// Returns one unit, waking the longest-waiting acquirer if any.
  void Release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_.ResumeSoon(h);  // the released unit transfers to this waiter
    } else {
      ++count_;
    }
  }

  std::uint64_t available() const { return count_; }
  std::size_t waiting() const { return waiters_.size(); }

 private:
  Simulator& sim_;
  std::uint64_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Wait for a group of processes to finish: Add() before spawning each,
/// Done() at the end of each, co_await Wait() to join them all.
class WaitGroup {
 public:
  explicit WaitGroup(Simulator& s) : sim_(s) {}
  WaitGroup(const WaitGroup&) = delete;
  WaitGroup& operator=(const WaitGroup&) = delete;

  void Add(std::uint64_t n = 1) { count_ += n; }

  void Done() {
    ZSTOR_CHECK(count_ > 0);
    if (--count_ == 0) {
      for (auto h : waiters_) sim_.ResumeSoon(h);
      waiters_.clear();
    }
  }

  struct Awaiter {
    WaitGroup& wg;
    bool await_ready() const { return wg.count_ == 0; }
    void await_suspend(std::coroutine_handle<> h) {
      wg.waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };
  Awaiter Wait() { return Awaiter{*this}; }

  std::uint64_t count() const { return count_; }

 private:
  Simulator& sim_;
  std::uint64_t count_ = 0;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// One-shot event: waiters suspend until Set() is called once. Waiting on
/// an already-set event does not suspend.
class OneShotEvent {
 public:
  explicit OneShotEvent(Simulator& s) : sim_(s) {}
  OneShotEvent(const OneShotEvent&) = delete;
  OneShotEvent& operator=(const OneShotEvent&) = delete;

  void Set() {
    if (set_) return;
    set_ = true;
    for (auto h : waiters_) sim_.ResumeSoon(h);
    waiters_.clear();
  }

  struct Awaiter {
    OneShotEvent& e;
    bool await_ready() const { return e.set_; }
    void await_suspend(std::coroutine_handle<> h) { e.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };
  Awaiter Wait() { return Awaiter{*this}; }
  bool is_set() const { return set_; }

 private:
  Simulator& sim_;
  bool set_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Unbounded FIFO channel. Push never blocks; Pop suspends until an item
/// is available. Items are handed to poppers in FIFO order.
template <typename T>
class Queue {
 public:
  explicit Queue(Simulator& s) : sim_(s) {}
  Queue(const Queue&) = delete;
  Queue& operator=(const Queue&) = delete;

  void Push(T item) {
    if (!poppers_.empty()) {
      PopAwaiter* p = poppers_.front();
      poppers_.pop_front();
      p->slot = std::move(item);
      sim_.ResumeSoon(p->handle);
    } else {
      items_.push_back(std::move(item));
    }
  }

  struct PopAwaiter {
    Queue& q;
    std::optional<T> slot;
    std::coroutine_handle<> handle;

    bool await_ready() {
      if (q.items_.empty()) return false;
      slot = std::move(q.items_.front());
      q.items_.pop_front();
      return true;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      q.poppers_.push_back(this);
    }
    T await_resume() {
      ZSTOR_CHECK(slot.has_value());
      return std::move(*slot);
    }
  };

  /// Suspends until an item arrives, then yields it.
  PopAwaiter Pop() { return PopAwaiter{*this, std::nullopt, nullptr}; }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

 private:
  Simulator& sim_;
  std::deque<T> items_;
  std::deque<PopAwaiter*> poppers_;
};

}  // namespace zstor::sim
