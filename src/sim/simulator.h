// Discrete-event simulation core: a virtual clock, a same-time ready
// queue, and a 4-ary timed-event heap.
//
// Everything in the repository — NAND dies, NVMe queues, the ZNS firmware,
// host stacks and workload generators — runs as coroutines (see task.h)
// driven by one Simulator instance. Events scheduled for the same instant
// fire in FIFO order, which keeps runs fully deterministic.
//
// Performance model (DESIGN.md §1, "performance of the simulator
// itself"):
//
//  * Events carry an EventFn (event_fn.h): small-buffer storage, trivial
//    relocation, zero allocations for coroutine resumes and small
//    lambdas.
//  * Zero-delay events — ResumeSoon and ScheduleIn(0), the backbone of
//    sync.h wakeups and resource.h slot hand-offs — go to a plain FIFO
//    ring buffer and never touch the heap.
//  * Timed events live in a 4-ary implicit heap, split
//    structure-of-arrays: the (time, seq) ordering keys are packed into
//    one 128-bit integer each in their own array, so a sift level
//    compares four neighboring 16-byte keys instead of four 48-byte
//    structs — most sift work stays in one or two cache lines. The heap
//    owns raw storage and relocates events with memcpy (EventFn is
//    trivially relocatable by contract), so sifts and growth never run
//    move constructors or destroy checks per element. Pops extract by
//    move (no const_cast out of a priority_queue top, which was
//    UB-prone) and repair the heap bottom-up: the hole walks to a leaf
//    on min-child comparisons alone, then the former last element
//    bubbles up, saving one comparison per level on the common path.
//
// Ordering guarantee: every scheduled event gets a global sequence
// number; execution order is (time, seq) lexicographic no matter which
// container held the event. The ready queue is consulted first only when
// the heap has no event due at the same instant with a smaller seq, so
// mixing ScheduleAt(now) with ScheduleIn(0) preserves exact FIFO.
#pragma once

#include <coroutine>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>

#include "sim/check.h"
#include "sim/event_fn.h"
#include "sim/time.h"

namespace zstor::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator() {
    // Both containers are raw storage; destroy what is still engaged.
    for (std::size_t i = 0; i < heap_size_; ++i) fns_[i].~EventFn();
    for (std::size_t i = 0; i < ready_count_; ++i) {
      ready_[(ready_head_ + i) & (ready_cap_ - 1)].fn.~EventFn();
    }
  }

  /// Current virtual time.
  Time now() const { return now_; }

  /// Schedules `fn` (anything an EventFn can wrap: a lambda, a coroutine
  /// handle, an EventFn rvalue) to run at absolute virtual time `when`
  /// (>= now()). Templated so the EventFn is constructed directly in its
  /// container slot — no temporary materialized and block-copied.
  /// The check is always on (also in release benches): continuing past a
  /// backwards schedule would silently corrupt every later timestamp,
  /// and one predictable branch per event is noise next to the sift.
  template <typename F>
  void ScheduleAt(Time when, F&& fn) {
    ZSTOR_CHECK_MSG(when >= now_, "scheduling into the past");
    if (when == now_) {
      ReadyPush(next_seq_++, std::forward<F>(fn));
    } else {
      HeapPush(when, next_seq_++, std::forward<F>(fn));
    }
  }

  /// Schedules `fn` to run `delay` nanoseconds from now.
  template <typename F>
  void ScheduleIn(Time delay, F&& fn) {
    ScheduleAt(now_ + delay, std::forward<F>(fn));
  }

  /// Resumes `h` at now() + delay. The common way coroutines sleep.
  /// EventFn's coroutine-handle constructor makes this allocation-free.
  void ResumeIn(Time delay, std::coroutine_handle<> h) {
    Time when = now_ + delay;
    ZSTOR_CHECK_MSG(when >= now_, "scheduling into the past");
    if (delay == 0) {
      ReadyPush(next_seq_++, h);
    } else {
      HeapPush(when, next_seq_++, h);
    }
  }

  /// Resumes `h` as a fresh event at the current time (trampolines resume
  /// through the event loop, keeping native stacks shallow). Fast path:
  /// straight into the ready ring, bypassing the heap.
  void ResumeSoon(std::coroutine_handle<> h) { ReadyPush(next_seq_++, h); }

  /// Awaitable that suspends the calling coroutine for `delay` ns.
  /// Always suspends (even for delay 0) so same-time events keep FIFO
  /// order.
  auto Delay(Time delay) {
    struct Awaiter {
      Simulator& s;
      Time d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { s.ResumeIn(d, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, delay};
  }

  /// Runs events until none remain. Returns the number processed.
  std::uint64_t Run() {
    std::uint64_t n = 0;
    while (ready_count_ != 0 || heap_size_ != 0) {
      Step();
      ++n;
    }
    return n;
  }

  /// Runs events with timestamp <= `until` (boundary inclusive), then
  /// sets now() = until. Returns the number of events processed.
  std::uint64_t RunUntil(Time until) {
    std::uint64_t n = 0;
    while ((ready_count_ != 0 && now_ <= until) ||
           (heap_size_ != 0 && KeyTime(keys_[0]) <= until)) {
      Step();
      ++n;
    }
    if (now_ < until) now_ = until;
    return n;
  }

  bool idle() const { return ready_count_ == 0 && heap_size_ == 0; }
  std::size_t pending_events() const { return ready_count_ + heap_size_; }

  /// Timestamp of the earliest pending event: now() when a same-time
  /// ready event exists, the heap minimum otherwise. The conservative
  /// window planner (parallel_sim.h) uses this as each lane's earliest
  /// possible send time. Callers must check idle() first.
  Time next_event_time() const {
    ZSTOR_CHECK(!idle());
    return ready_count_ != 0 ? now_ : KeyTime(keys_[0]);
  }

 private:
  // Heap ordering key: virtual time in the high 64 bits, the global
  // sequence number in the low 64. One unsigned 128-bit compare is
  // exactly (time, seq) lexicographic order.
  using Key = unsigned __int128;
  static Key MakeKey(Time when, std::uint64_t seq) {
    return (static_cast<Key>(when) << 64) | seq;
  }
  static Time KeyTime(Key k) { return static_cast<Time>(k >> 64); }
  static std::uint64_t KeySeq(Key k) { return static_cast<std::uint64_t>(k); }

  struct ReadyEvent {  // due exactly at now_ by construction
    std::uint64_t seq;
    EventFn fn;
  };

  /// Runs the globally next event: the ready queue's front, unless a
  /// heap event due at the same instant was scheduled earlier.
  ///
  /// Invocation consumes the event in place (EventFn's protocol: thunks
  /// copy their state before user code runs), so the only case that
  /// copies the event out first is a heap pop that must sift — the
  /// repair relocates another event into slot 0 before the callback can
  /// run.
  void Step() {
    if (ready_count_ != 0) {
      ReadyEvent& front = ready_[ready_head_];
      // Heap min is always >= now_, so a different time means later.
      if (heap_size_ == 0 || keys_[0] > MakeKey(now_, front.seq)) {
        ready_head_ = (ready_head_ + 1) & (ready_cap_ - 1);
        --ready_count_;
        front.fn();  // consumed; the slot is dead storage from here on
        return;
      }
    }
    now_ = KeyTime(keys_[0]);
    std::size_t n = --heap_size_;
    if (n == 0) {
      fns_[0]();  // nothing to repair; consume straight from the slot
      return;
    }
    alignas(EventFn) unsigned char raw[sizeof(EventFn)];
    std::memcpy(raw, &fns_[0], sizeof(EventFn));  // slot 0 becomes the hole
    SiftLastIntoRoot(n);
    (*std::launder(reinterpret_cast<EventFn*>(raw)))();
  }

  // ---- ready ring (FIFO, power-of-two capacity) -----------------------
  //
  // Same raw-storage discipline as the heap: slots between head and
  // head+count are engaged, everything else is dead bytes; relocation is
  // memcpy.

  template <typename F>
  void ReadyPush(std::uint64_t seq, F&& fn) {
    if (ready_count_ == ready_cap_) [[unlikely]] GrowReady();
    std::size_t i = (ready_head_ + ready_count_) & (ready_cap_ - 1);
    ready_[i].seq = seq;
    ::new (static_cast<void*>(&ready_[i].fn)) EventFn(std::forward<F>(fn));
    ++ready_count_;
  }

  void GrowReady() {
    std::size_t cap = ready_cap_ == 0 ? 16 : ready_cap_ * 2;
    auto mem = std::make_unique_for_overwrite<unsigned char[]>(
        cap * sizeof(ReadyEvent));
    auto* bigger = reinterpret_cast<ReadyEvent*>(mem.get());
    for (std::size_t i = 0; i < ready_count_; ++i) {
      std::memcpy(static_cast<void*>(&bigger[i]),
                  &ready_[(ready_head_ + i) & (ready_cap_ - 1)],
                  sizeof(ReadyEvent));
    }
    ready_mem_ = std::move(mem);
    ready_ = bigger;
    ready_cap_ = cap;
    ready_head_ = 0;
  }

  // ---- 4-ary timed-event heap ----------------------------------------
  //
  // keys_ and fns_ are parallel arrays over manually managed raw storage
  // (heap_size_ engaged slots, heap_cap_ allocated). Sift relocations
  // and growth use memcpy: EventFn guarantees trivial relocatability
  // (pointers plus an inline byte buffer, nothing self-referential), so
  // copying its bytes into a hole slot and abandoning the source IS the
  // move. Holes are always filled before control leaves the heap
  // routines, and only engaged slots are ever destroyed.

  static void Relocate(EventFn* dst, const EventFn* src) {
    std::memcpy(static_cast<void*>(dst), static_cast<const void*>(src),
                sizeof(EventFn));
  }

  template <typename F>
  void HeapPush(Time when, std::uint64_t seq, F&& fn) {
    if (heap_size_ == heap_cap_) [[unlikely]] GrowHeap();
    Key key = MakeKey(when, seq);
    std::size_t i = heap_size_++;
    while (i > 0) {
      std::size_t parent = (i - 1) >> 2;
      if (keys_[parent] < key) break;
      keys_[i] = keys_[parent];
      Relocate(&fns_[i], &fns_[parent]);
      i = parent;
    }
    keys_[i] = key;
    ::new (static_cast<void*>(&fns_[i])) EventFn(std::forward<F>(fn));
  }

  /// Repairs the heap after slot 0 was copied out and heap_size_ already
  /// decremented to `n` (> 0). Bottom-up variant: the hole walks to a
  /// leaf on min-child comparisons only, then the former last element
  /// bubbles up from the leaf — usually zero or one step, since it came
  /// from leaf depth itself.
  void SiftLastIntoRoot(std::size_t n) {
    Key key = keys_[n];
    std::size_t i = 0;
    for (;;) {
      std::size_t first = (i << 2) + 1;
      if (first >= n) break;
      std::size_t end = first + 4 < n ? first + 4 : n;
      std::size_t best = first;
      for (std::size_t c = first + 1; c < end; ++c) {
        if (keys_[c] < keys_[best]) best = c;
      }
      keys_[i] = keys_[best];
      Relocate(&fns_[i], &fns_[best]);
      i = best;
    }
    while (i > 0) {
      std::size_t parent = (i - 1) >> 2;
      if (keys_[parent] <= key) break;
      keys_[i] = keys_[parent];
      Relocate(&fns_[i], &fns_[parent]);
      i = parent;
    }
    keys_[i] = key;
    Relocate(&fns_[i], &fns_[n]);  // former last slot becomes dead storage
  }

  void GrowHeap() {
    std::size_t cap = heap_cap_ == 0 ? 64 : heap_cap_ * 2;
    auto keys = std::make_unique_for_overwrite<unsigned char[]>(
        cap * sizeof(Key));
    auto fns = std::make_unique_for_overwrite<unsigned char[]>(
        cap * sizeof(EventFn));
    if (heap_size_ != 0) {
      std::memcpy(keys.get(), key_mem_.get(), heap_size_ * sizeof(Key));
      std::memcpy(fns.get(), fn_mem_.get(), heap_size_ * sizeof(EventFn));
    }
    key_mem_ = std::move(keys);
    fn_mem_ = std::move(fns);
    keys_ = reinterpret_cast<Key*>(key_mem_.get());
    fns_ = reinterpret_cast<EventFn*>(fn_mem_.get());
    heap_cap_ = cap;
  }

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::unique_ptr<unsigned char[]> key_mem_;
  std::unique_ptr<unsigned char[]> fn_mem_;
  Key* keys_ = nullptr;
  EventFn* fns_ = nullptr;
  std::size_t heap_size_ = 0;
  std::size_t heap_cap_ = 0;
  std::unique_ptr<unsigned char[]> ready_mem_;
  ReadyEvent* ready_ = nullptr;
  std::size_t ready_cap_ = 0;  // always a power of two (or zero)
  std::size_t ready_head_ = 0;
  std::size_t ready_count_ = 0;
};

}  // namespace zstor::sim
