// Discrete-event simulation core: a virtual clock and an event heap.
//
// Everything in the repository — NAND dies, NVMe queues, the ZNS firmware,
// host stacks and workload generators — runs as coroutines (see task.h)
// driven by one Simulator instance. Events scheduled for the same instant
// fire in FIFO order, which keeps runs fully deterministic.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/check.h"
#include "sim/time.h"

namespace zstor::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  Time now() const { return now_; }

  /// Schedules `fn` to run at absolute virtual time `when` (>= now()).
  void ScheduleAt(Time when, std::function<void()> fn) {
    ZSTOR_CHECK_MSG(when >= now_, "scheduling into the past");
    heap_.push(Event{when, next_seq_++, std::move(fn)});
  }

  /// Schedules `fn` to run `delay` nanoseconds from now.
  void ScheduleIn(Time delay, std::function<void()> fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Resumes `h` at now() + delay. The common way coroutines sleep.
  void ResumeIn(Time delay, std::coroutine_handle<> h) {
    ScheduleIn(delay, [h] { h.resume(); });
  }

  /// Resumes `h` as a fresh event at the current time (trampolines resume
  /// through the event loop, keeping native stacks shallow).
  void ResumeSoon(std::coroutine_handle<> h) {
    ScheduleIn(0, [h] { h.resume(); });
  }

  /// Awaitable that suspends the calling coroutine for `delay` ns.
  /// Always suspends (even for delay 0) so same-time events keep FIFO order.
  auto Delay(Time delay) {
    struct Awaiter {
      Simulator& s;
      Time d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { s.ResumeIn(d, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, delay};
  }

  /// Runs events until the heap is empty. Returns the number processed.
  std::uint64_t Run() {
    std::uint64_t n = 0;
    while (!heap_.empty()) {
      Step();
      ++n;
    }
    return n;
  }

  /// Runs events with timestamp <= `until`, then sets now() = until.
  /// Returns the number of events processed.
  std::uint64_t RunUntil(Time until) {
    std::uint64_t n = 0;
    while (!heap_.empty() && heap_.top().when <= until) {
      Step();
      ++n;
    }
    if (now_ < until) now_ = until;
    return n;
  }

  bool idle() const { return heap_.empty(); }
  std::size_t pending_events() const { return heap_.size(); }

 private:
  struct Event {
    Time when;
    std::uint64_t seq;  // tie-breaker: FIFO among same-time events
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      return when != o.when ? when > o.when : seq > o.seq;
    }
  };

  void Step() {
    // Move the event out before running: the callback may schedule more.
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.when;
    ev.fn();
  }

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
};

}  // namespace zstor::sim
