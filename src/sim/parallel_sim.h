// Parallel discrete-event engine: per-device lanes with conservative
// windowed synchronization (DESIGN.md §12).
//
// A ParallelSimulator owns K independent Simulator instances ("lanes").
// Lane 0 is conventionally the coordinator (host-side shared state);
// lanes 1..K-1 each own one device's NAND array, FTL/ZNS logic, and the
// per-device slice of the host stack. Lanes never touch each other's
// state directly — every cross-lane interaction is an EventFn posted
// through a per-(src,dst) mailbox and delivered at least `lookahead`
// nanoseconds of virtual time in the future. The lookahead models the
// fixed host↔device interconnect hop, which is what makes conservative
// synchronization possible: a lane that has advanced to virtual time T
// can still receive messages, because no peer can affect it earlier
// than the peer's own clock plus the hop.
//
// Execution alternates drain and run phases:
//
//   1. Drain: each lane moves all pending inbound messages into its
//      event heap, sorted by (deliver_at, src lane, per-channel seq).
//   2. Plan (single thread, at a barrier): if every lane is idle the
//      run is complete. Otherwise the next window horizon is
//      H = min over "may send" lanes of (next_event_time + lookahead);
//      if no lane may send, the window is unbounded.
//   3. Run: every lane executes RunUntil(H) — or Run() to completion in
//      an unbounded window — then waits at a barrier; repeat.
//
// "May send" is tracked precisely so that fully sharded workloads (no
// cross-lane traffic) collapse into a single unbounded window and scale
// near-linearly: a lane may send if it is *spontaneous* (declared an
// initiator, e.g. the coordinator) and non-idle, or if it owes replies
// to earlier kRequest messages. Lanes that only ever reply are excluded
// from the horizon once their debts are settled.
//
// Mailboxes are single-producer/single-consumer by phase discipline
// rather than by atomics: producers append only during run phases,
// consumers drain only during drain phases, and the two phases are
// separated by a barrier (which establishes happens-before). That keeps
// the channels plain vectors — no locks, no per-message atomics — and
// makes the engine ThreadSanitizer-clean by construction.
//
// Determinism: the drain order (deliver_at, src, seq) is a total order
// on messages, independent of which worker thread runs which lane and
// of the thread count. Run(1) executes the exact same window schedule
// serially in lane order, so results are byte-identical for any thread
// count. A message delivering exactly at a window horizon H runs after
// the receiver's own events at H from earlier windows (RunUntil is
// boundary-inclusive; the drained event lands in the ready ring at
// now == H) — the (time, lane, seq) tie rule tests pin this down.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_fn.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace zstor::sim {

/// How a cross-lane message participates in the window planner's
/// may-send accounting.
enum class MsgKind : std::uint8_t {
  kOneWay,   ///< fire-and-forget; sender must be spontaneous
  kRequest,  ///< obliges the destination lane to eventually Post a kReply
  kReply,    ///< settles one kRequest debt of the sending lane
};

class ParallelSimulator {
 public:
  /// Sentinel for "no bound": an unbounded window horizon.
  static constexpr Time kNever = ~Time{0};

  ParallelSimulator(std::uint32_t num_lanes, Time lookahead);
  ParallelSimulator(const ParallelSimulator&) = delete;
  ParallelSimulator& operator=(const ParallelSimulator&) = delete;

  std::uint32_t num_lanes() const {
    return static_cast<std::uint32_t>(lanes_.size());
  }
  Simulator& lane(std::uint32_t i) { return *lanes_[i]; }
  Time lookahead() const { return lookahead_; }

  /// Declares lane `l` an initiator: it may originate cross-lane
  /// messages from locally scheduled events (not just replies). The
  /// planner keeps every window horizon at or below a spontaneous
  /// lane's next event + lookahead while it has pending events.
  void SetSpontaneous(std::uint32_t l, bool v) { spontaneous_[l] = v; }

  /// Posts `fn` for execution in lane `dst` at virtual time
  /// `deliver_at`. Must be called from code running inside lane `src`
  /// (or from the driving thread before Run). `deliver_at` must be at
  /// least lane(src).now() + lookahead() — the interconnect hop is the
  /// safety margin that lets the destination keep running ahead.
  void Post(std::uint32_t src, std::uint32_t dst, Time deliver_at,
            MsgKind kind, EventFn fn);

  /// Runs all lanes to global quiescence on `threads` worker threads
  /// (clamped to [1, num_lanes]). With threads == 1 the identical
  /// window schedule executes serially in lane order on the calling
  /// thread — no threads are spawned. Returns total events executed.
  std::uint64_t Run(unsigned threads);

  /// Number of synchronization windows executed so far (diagnostics).
  std::uint64_t windows() const { return windows_; }
  /// Number of cross-lane messages posted so far (diagnostics).
  std::uint64_t messages() const {
    return messages_.load(std::memory_order_relaxed);
  }

 private:
  struct Msg {
    Time deliver_at;
    std::uint32_t src;
    std::uint64_t seq;  // per-channel, assigned in producer program order
    EventFn fn;
  };
  struct Channel {
    std::vector<Msg> msgs;
    std::uint64_t next_seq = 0;
  };
  struct Plan {
    bool done;
    Time horizon;  // kNever = unbounded window
  };

  Channel& chan(std::uint32_t src, std::uint32_t dst) {
    return channels_[src * lanes_.size() + dst];
  }
  void DrainInto(std::uint32_t dst);
  Plan MakePlan();
  std::uint64_t RunSerial();
  std::uint64_t RunThreaded(unsigned threads);

  Time lookahead_;
  std::vector<std::unique_ptr<Simulator>> lanes_;
  std::vector<Channel> channels_;  // [src * K + dst]
  std::vector<std::vector<Msg>> scratch_;  // per-dst drain staging
  std::vector<bool> spontaneous_;
  // owed_[l] counts kRequests delivered toward lane l that it has not
  // yet answered with a kReply. Updated with relaxed atomics from lane
  // worker threads; read only at barriers, where values are exact.
  std::unique_ptr<std::atomic<std::int64_t>[]> owed_;
  // True while lanes execute an unbounded window; any Post then is a
  // protocol violation (the receiver may already be arbitrarily far
  // ahead) and fails loudly instead of corrupting timestamps.
  std::atomic<bool> unbounded_window_{false};
  std::uint64_t windows_ = 0;
  std::atomic<std::uint64_t> messages_{0};
};

}  // namespace zstor::sim
