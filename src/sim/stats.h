// Streaming statistics used by every experiment: exact moments (Welford),
// log-linear latency histograms with percentile queries (HDR-style), and
// binned throughput time series for the Fig. 6 style over-time plots.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/time.h"

namespace zstor::sim {

/// Exact streaming mean/variance/min/max (Welford's algorithm).
class Welford {
 public:
  void Record(double x);
  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  /// NaN when no samples were recorded — an empty window must never be
  /// mistaken for a real zero-valued measurement.
  double min() const {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  double max() const {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }
  /// Coefficient of variation (stddev / mean); 0 when undefined.
  double cv() const;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Log-linear histogram over nanosecond latencies, ~1.6% relative
/// resolution (64 linear sub-buckets per power of two), range 1 ns .. ~5 h.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void Record(Time latency_ns);

  std::uint64_t count() const { return moments_.count(); }
  double mean_ns() const { return moments_.mean(); }
  double min_ns() const { return moments_.min(); }
  double max_ns() const { return moments_.max(); }
  double stddev_ns() const { return moments_.stddev(); }

  /// Latency (ns) at quantile q in [0,1], e.g. 0.95 for p95. Exact count
  /// ranks; value is the midpoint of the containing bucket (<=1.6% error).
  /// NaN when the histogram is empty — same convention as Welford
  /// min()/max(): an empty window must never look like a measurement.
  double Quantile(double q) const;

  double p50_ns() const { return Quantile(0.50); }
  double p95_ns() const { return Quantile(0.95); }
  double p99_ns() const { return Quantile(0.99); }

  void Merge(const LatencyHistogram& other);
  void Reset();

  /// Distribution of the samples recorded since the previous
  /// TakeInterval() (or since construction/Reset). Same NaN-when-empty
  /// convention as the cumulative accessors.
  struct IntervalStats {
    std::uint64_t count = 0;
    double mean_ns = std::numeric_limits<double>::quiet_NaN();
    double p50_ns = std::numeric_limits<double>::quiet_NaN();
    double p95_ns = std::numeric_limits<double>::quiet_NaN();
    double p99_ns = std::numeric_limits<double>::quiet_NaN();
    double max_ns = std::numeric_limits<double>::quiet_NaN();
  };

  /// Computes IntervalStats from bucket deltas against a baseline copy,
  /// then advances the baseline (snapshot-and-clear for the *interval*
  /// view only). Cumulative count/mean/quantiles are untouched, and the
  /// Record() hot path never pays for intervals nobody takes: the
  /// baseline is allocated lazily on the first call. Interval values are
  /// bucket midpoints (<= 1.6% error), including mean and max.
  IntervalStats TakeInterval();

  /// "mean=12.3us p50=… p95=…" — for logs and bench output.
  std::string Summary() const;

 private:
  static constexpr int kSubBucketBits = 6;  // 64 sub-buckets per octave
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kOctaves = 45;       // up to ~2^45 ns ≈ 9.7 h
  static constexpr int kBuckets = kOctaves * kSubBuckets;

  static int BucketIndex(Time v);
  static double BucketMidpoint(int idx);

  std::vector<std::uint64_t> buckets_;
  Welford moments_;
  /// Bucket counts at the last TakeInterval(); empty (= all zeros) until
  /// the first call, so cumulative-only users never pay the copy.
  std::vector<std::uint64_t> interval_base_;
  std::uint64_t interval_base_count_ = 0;
};

/// Accumulates an amount (bytes, ops) into fixed-width virtual-time bins;
/// yields a throughput-over-time series like the paper's Fig. 6.
class TimeSeries {
 public:
  /// Bins of `bin_width` ns starting at t=0.
  explicit TimeSeries(Time bin_width);

  void Record(Time when, double amount);

  Time bin_width() const { return bin_width_; }
  std::size_t num_bins() const { return bins_.size(); }

  /// Sum recorded in bin i.
  double BinTotal(std::size_t i) const { return bins_[i]; }
  /// Recorded amount per second for bin i (e.g. bytes/s).
  double BinRate(std::size_t i) const;

  /// Per-second rates for all complete-or-not bins.
  std::vector<double> Rates() const;

  /// Adds another series bin-wise (bin widths must match). Bins are an
  /// order-insensitive sum, so merging per-shard series reproduces the
  /// single-collector series exactly.
  void Merge(const TimeSeries& other);

  /// Moments over the per-bin rates, optionally skipping warmup bins.
  Welford RateMoments(std::size_t skip_bins = 0) const;

 private:
  Time bin_width_;
  std::vector<double> bins_;
};

}  // namespace zstor::sim
