// EventFn: the simulator's non-allocating event callback.
//
// Every scheduled event used to carry a std::function<void()>; the hot
// path (resuming a coroutine) then paid the std::function machinery —
// manager-dispatched moves during heap sifts and, for captures past the
// implementation's tiny SBO, a heap allocation per event. EventFn is a
// move-only callable with
//
//  * inline storage for any trivially-copyable callable of up to
//    kInlineBytes (a coroutine handle, a lambda capturing `this` plus a
//    word, a function pointer) — no allocation, ever, for these;
//  * trivial relocation: moving an EventFn is two pointer copies and a
//    fixed-size memcpy, no indirect calls — heap sifts in
//    Simulator move events around constantly, so this is what makes the
//    4-ary event heap cheap;
//  * a dedicated coroutine-handle constructor (the ResumeIn/ResumeSoon
//    fast path) that stores just the frame address;
//  * a heap fallback for large or non-trivially-copyable callables
//    (rare: nothing in the tree needs it today), so the API stays as
//    general as std::function.
//
// The performance contract is enforced at compile time below
// (static_assert) and at runtime by tests/sim/alloc_count_test.cc, which
// counts global operator new calls on the resume path.
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace zstor::sim {

class EventFn {
 public:
  /// Inline storage size. Two pointers: enough for every callback the
  /// simulator schedules internally (coroutine handles, `this` + a word).
  static constexpr std::size_t kInlineBytes = 2 * sizeof(void*);

  /// True when callables of type F are stored inline (no allocation).
  /// Inline storage also requires trivial copyability so moves can be a
  /// raw memcpy (see the relocation note above).
  template <typename F>
  static constexpr bool kStoredInline =
      sizeof(F) <= kInlineBytes && alignof(F) <= alignof(void*) &&
      std::is_trivially_copyable_v<F>;

  EventFn() noexcept = default;

  /// Fast path: an event that resumes `h`. Never allocates.
  EventFn(std::coroutine_handle<> h) noexcept : invoke_(&ResumeHandle) {
    void* addr = h.address();
    std::memcpy(buf_, &addr, sizeof addr);
  }

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
             !std::is_same_v<std::remove_cvref_t<F>,
                             std::coroutine_handle<>> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): callable wrapper
    using D = std::remove_cvref_t<F>;
    if constexpr (kStoredInline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      invoke_ = &InvokeInline<D>;
    } else {
      D* p = new D(std::forward<F>(f));
      std::memcpy(buf_, &p, sizeof p);
      invoke_ = &InvokeHeap<D>;
      destroy_ = &DestroyHeap<D>;
    }
  }

  EventFn(EventFn&& o) noexcept { StealFrom(o); }
  EventFn& operator=(EventFn&& o) noexcept {
    if (this != &o) {
      if (destroy_ != nullptr) destroy_(buf_);
      StealFrom(o);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() {
    if (destroy_ != nullptr) destroy_(buf_);
  }

  /// Invokes and thereby CONSUMES the callable. Must be engaged.
  ///
  /// Invocation protocol: every thunk copies whatever it needs out of
  /// the storage before it runs user code, and frees any owned heap
  /// payload itself. Consequences the simulator relies on:
  ///  * the instant user code starts running, this EventFn's storage is
  ///    dead and may be overwritten — Step() invokes events directly in
  ///    their container slot when no heap repair will clobber it, and a
  ///    callback scheduling a new event may reuse the slot immediately;
  ///  * the object is disengaged BEFORE the thunk runs, so destroying
  ///    an invoked EventFn is a no-op (the payload died with the call);
  ///    the destructor only releases events that never ran, e.g. ones
  ///    still pending at simulator teardown.
  void operator()() {
    Thunk inv = invoke_;
    invoke_ = nullptr;
    destroy_ = nullptr;
    inv(buf_);
  }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

 private:
  using Thunk = void (*)(void*);

  void StealFrom(EventFn& o) noexcept {
    invoke_ = o.invoke_;
    destroy_ = o.destroy_;
    std::memcpy(buf_, o.buf_, kInlineBytes);
    o.invoke_ = nullptr;
    o.destroy_ = nullptr;
  }

  // All invoke thunks copy their state out of `buf` before running user
  // code (see operator()'s protocol note).
  static void ResumeHandle(void* buf) {
    void* addr;
    std::memcpy(&addr, buf, sizeof addr);
    std::coroutine_handle<>::from_address(addr).resume();
  }
  template <typename D>
  static void InvokeInline(void* buf) {
    D d(*std::launder(reinterpret_cast<D*>(buf)));  // trivial copy
    d();
  }
  template <typename D>
  static void InvokeHeap(void* buf) {
    D* p;
    std::memcpy(&p, buf, sizeof p);
    (*p)();
    delete p;  // invocation consumes: the owned payload dies with it
  }
  template <typename D>
  static void DestroyHeap(void* buf) {
    D* p;
    std::memcpy(&p, buf, sizeof p);
    delete p;
  }

  Thunk invoke_ = nullptr;
  Thunk destroy_ = nullptr;  // null: trivially destructible (inline case)
  // Zero-initialized so relocating a disengaged EventFn (e.g. the hole
  // slot during a heap grow) never copies indeterminate bytes.
  alignas(void*) unsigned char buf_[kInlineBytes] = {};
};

// The coroutine-resume path must never allocate: a frame address always
// fits inline, and coroutine handles are trivially copyable.
static_assert(EventFn::kStoredInline<std::coroutine_handle<>>,
              "coroutine resume events must be allocation-free");
static_assert(sizeof(EventFn) == 4 * sizeof(void*),
              "EventFn layout grew; heap sift cost depends on this");

}  // namespace zstor::sim
