// Lightweight invariant checking for simulator code.
//
// Simulation code must never continue past a broken invariant (results
// would be silently wrong), so checks are always on, also in release
// builds. They print the failing expression and location, then abort.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace zstor {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace zstor

#define ZSTOR_CHECK(expr)                                     \
  do {                                                        \
    if (!(expr)) [[unlikely]]                                 \
      ::zstor::CheckFailed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define ZSTOR_CHECK_MSG(expr, msg)                            \
  do {                                                        \
    if (!(expr)) [[unlikely]]                                 \
      ::zstor::CheckFailed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
