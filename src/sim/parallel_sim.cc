#include "sim/parallel_sim.h"

#include <algorithm>
#include <barrier>
#include <thread>

#include "sim/check.h"

namespace zstor::sim {

ParallelSimulator::ParallelSimulator(std::uint32_t num_lanes, Time lookahead)
    : lookahead_(lookahead),
      channels_(static_cast<std::size_t>(num_lanes) * num_lanes),
      scratch_(num_lanes),
      spontaneous_(num_lanes, false),
      owed_(new std::atomic<std::int64_t>[num_lanes]) {
  ZSTOR_CHECK_MSG(num_lanes >= 1, "need at least one lane");
  ZSTOR_CHECK_MSG(lookahead >= 1, "zero lookahead admits no parallelism");
  lanes_.reserve(num_lanes);
  for (std::uint32_t i = 0; i < num_lanes; ++i) {
    lanes_.push_back(std::make_unique<Simulator>());
    owed_[i].store(0, std::memory_order_relaxed);
  }
}

void ParallelSimulator::Post(std::uint32_t src, std::uint32_t dst,
                             Time deliver_at, MsgKind kind, EventFn fn) {
  ZSTOR_CHECK(src < num_lanes() && dst < num_lanes() && src != dst);
  ZSTOR_CHECK_MSG(deliver_at >= lanes_[src]->now() + lookahead_,
                  "cross-lane message under the interconnect lookahead");
  ZSTOR_CHECK_MSG(!unbounded_window_.load(std::memory_order_relaxed),
                  "cross-lane Post during an unbounded window — the sender "
                  "must be spontaneous or owe a reply");
  Channel& c = chan(src, dst);
  c.msgs.push_back(Msg{deliver_at, src, c.next_seq++, std::move(fn)});
  if (kind == MsgKind::kRequest) {
    owed_[dst].fetch_add(1, std::memory_order_relaxed);
  } else if (kind == MsgKind::kReply) {
    std::int64_t prev = owed_[src].fetch_sub(1, std::memory_order_relaxed);
    ZSTOR_CHECK_MSG(prev > 0, "kReply without a matching kRequest");
  }
  messages_.fetch_add(1, std::memory_order_relaxed);
}

void ParallelSimulator::DrainInto(std::uint32_t dst) {
  std::vector<Msg>& staged = scratch_[dst];
  staged.clear();
  for (std::uint32_t src = 0; src < num_lanes(); ++src) {
    Channel& c = chan(src, dst);
    for (Msg& m : c.msgs) staged.push_back(std::move(m));
    c.msgs.clear();
  }
  if (staged.empty()) return;
  // Total order on same-destination messages: (time, lane, seq). The
  // receiving simulator assigns monotonically increasing event seqs in
  // this order, so same-time deliveries fire exactly in it.
  std::sort(staged.begin(), staged.end(), [](const Msg& a, const Msg& b) {
    if (a.deliver_at != b.deliver_at) return a.deliver_at < b.deliver_at;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  });
  Simulator& s = *lanes_[dst];
  for (Msg& m : staged) {
    ZSTOR_CHECK_MSG(m.deliver_at >= s.now(),
                    "message delivery behind the destination lane's clock");
    s.ScheduleAt(m.deliver_at, std::move(m.fn));
  }
  staged.clear();
}

ParallelSimulator::Plan ParallelSimulator::MakePlan() {
  bool all_idle = true;
  Time horizon = kNever;
  for (std::uint32_t l = 0; l < num_lanes(); ++l) {
    Simulator& s = *lanes_[l];
    bool owes = owed_[l].load(std::memory_order_relaxed) > 0;
    if (s.idle()) {
      ZSTOR_CHECK_MSG(!owes,
                      "lane owes a cross-lane reply but has no events "
                      "(protocol deadlock)");
      continue;
    }
    all_idle = false;
    if (owes || spontaneous_[l]) {
      Time h = s.next_event_time() + lookahead_;
      horizon = std::min(horizon, h);
    }
  }
  if (all_idle) return Plan{true, kNever};
  ++windows_;
  unbounded_window_.store(horizon == kNever, std::memory_order_relaxed);
  return Plan{false, horizon};
}

std::uint64_t ParallelSimulator::RunSerial() {
  std::uint64_t total = 0;
  for (;;) {
    for (std::uint32_t l = 0; l < num_lanes(); ++l) DrainInto(l);
    Plan p = MakePlan();
    if (p.done) break;
    for (std::uint32_t l = 0; l < num_lanes(); ++l) {
      total += p.horizon == kNever ? lanes_[l]->Run()
                                   : lanes_[l]->RunUntil(p.horizon);
    }
  }
  return total;
}

std::uint64_t ParallelSimulator::RunThreaded(unsigned threads) {
  const unsigned T = threads;
  Plan plan{false, 0};
  // Drained channels and lane heaps are read by the planner at this
  // barrier; the barrier's arrive/wait edges provide the only
  // synchronization the plain-vector mailboxes need.
  std::barrier plan_barrier(T, [this, &plan]() noexcept { plan = MakePlan(); });
  std::barrier window_barrier(static_cast<std::ptrdiff_t>(T));
  std::atomic<std::uint64_t> total{0};

  auto worker = [&](unsigned w) {
    std::uint64_t local = 0;
    for (;;) {
      for (std::uint32_t l = w; l < num_lanes(); l += T) DrainInto(l);
      plan_barrier.arrive_and_wait();
      if (plan.done) break;
      for (std::uint32_t l = w; l < num_lanes(); l += T) {
        local += plan.horizon == kNever ? lanes_[l]->Run()
                                        : lanes_[l]->RunUntil(plan.horizon);
      }
      window_barrier.arrive_and_wait();
    }
    total.fetch_add(local, std::memory_order_relaxed);
  };

  std::vector<std::thread> pool;
  pool.reserve(T - 1);
  for (unsigned w = 1; w < T; ++w) pool.emplace_back(worker, w);
  worker(0);
  for (std::thread& t : pool) t.join();
  return total.load(std::memory_order_relaxed);
}

std::uint64_t ParallelSimulator::Run(unsigned threads) {
  unsigned T = std::clamp(threads, 1u, num_lanes());
  std::uint64_t n = T == 1 ? RunSerial() : RunThreaded(T);
  unbounded_window_.store(false, std::memory_order_relaxed);
  // Realign lane clocks at quiescence: an unbounded window lets lanes
  // finish at different virtual times, and a later Run posting across
  // lanes must never deliver behind a receiver's clock. The maximum is
  // thread-count independent, so this keeps runs deterministic too.
  Time latest = 0;
  for (std::uint32_t l = 0; l < num_lanes(); ++l) {
    ZSTOR_CHECK(owed_[l].load(std::memory_order_relaxed) == 0);
    ZSTOR_CHECK(lanes_[l]->idle());
    latest = std::max(latest, lanes_[l]->now());
  }
  for (std::uint32_t l = 0; l < num_lanes(); ++l) lanes_[l]->RunUntil(latest);
  return n;
}

}  // namespace zstor::sim
