#include "telemetry/trace.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>

#include "sim/check.h"
#include "telemetry/json.h"

namespace zstor::telemetry {

const char* ToString(Layer l) {
  switch (l) {
    case Layer::kHost: return "host";
    case Layer::kQueue: return "queue";
    case Layer::kFcp: return "fcp";
    case Layer::kPost: return "post";
    case Layer::kBuffer: return "buffer";
    case Layer::kZone: return "zone";
    case Layer::kNand: return "nand";
    case Layer::kFtl: return "ftl";
    case Layer::kWorkload: return "workload";
  }
  return "?";
}

RingBufferSink::RingBufferSink(std::size_t capacity) : capacity_(capacity) {
  ZSTOR_CHECK(capacity_ > 0);
  ring_.reserve(capacity_);
}

void RingBufferSink::OnEvent(const TraceEvent& e) {
  if (ring_.size() < capacity_) {
    ring_.push_back(e);
  } else {
    ring_[total_ % capacity_] = e;
  }
  ++total_;
}

std::vector<TraceEvent> RingBufferSink::Events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Once the ring has wrapped, the oldest surviving event sits right
  // after the most recently written slot.
  std::size_t start = total_ > capacity_ ? total_ % capacity_ : 0;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

JsonlFileSink::JsonlFileSink(const std::string& path) {
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    std::fprintf(stderr, "telemetry: cannot open trace file '%s'\n",
                 path.c_str());
  }
}

JsonlFileSink::~JsonlFileSink() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

namespace {

/// True when a phase name needs no escaping — the overwhelmingly common
/// case (static identifiers like "fcp.wait"), kept off the slow path.
bool PlainJsonString(const char* s) {
  for (; *s != '\0'; ++s) {
    unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\' || c < 0x20) return false;
  }
  return true;
}

}  // namespace

void JsonlFileSink::OnEvent(const TraceEvent& e) {
  if (file_ == nullptr) return;
  // Layer names come from ToString() and are always plain; event names are
  // almost always static identifiers but must still produce valid JSON
  // when someone registers a hostile one.
  const char* name = e.name;
  std::string escaped;
  if (!PlainJsonString(name)) {
    AppendJsonString(escaped, name);
    // AppendJsonString quotes; the format string quotes too, so strip.
    escaped = escaped.substr(1, escaped.size() - 2);
    name = escaped.c_str();
  }
  std::fprintf(file_,
               "{\"ts\":%llu,\"dur\":%llu,\"cmd\":%llu,\"layer\":\"%s\","
               "\"name\":\"%s\",\"a\":%lld,\"b\":%lld}\n",
               static_cast<unsigned long long>(e.begin),
               static_cast<unsigned long long>(e.duration()),
               static_cast<unsigned long long>(e.cmd), ToString(e.layer),
               name, static_cast<long long>(e.a),
               static_cast<long long>(e.b));
  ++written_;
}

void JsonlFileSink::Flush() {
  if (file_ != nullptr) std::fflush(file_);
}

std::uint64_t Tracer::NextCmdId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace zstor::telemetry
