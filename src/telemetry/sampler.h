// Periodic metric sampling on the simulator's virtual clock: every
// `interval` ns of virtual time, snapshot the registry and emit one
// "sample" timeline record with counter deltas, gauge levels, and
// interval histogram quantiles (sim::LatencyHistogram::TakeInterval).
//
// Termination: a naively self-rescheduling tick would keep
// Simulator::Run() from ever draining. Instead, a tick reschedules only
// while other events are pending; when the sim goes quiet the sampler
// parks, and the testbed re-arms it (EnsureRunning) before the next
// workload run. Ticks land exactly on multiples of the interval, so
// timelines are byte-identical across re-runs and --jobs counts.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "sim/simulator.h"
#include "telemetry/metrics.h"
#include "telemetry/timeline.h"

namespace zstor::telemetry {

class MetricSampler {
 public:
  /// Samples `metrics` into `writer` every `interval` ns, tagging records
  /// with testbed label `tb`. All references are non-owning and must
  /// outlive the sampler.
  MetricSampler(sim::Simulator& sim, MetricsRegistry& metrics,
                TimelineWriter& writer, sim::Time interval, std::string tb);

  /// Layers that batch-export counters (the Describe protocol) are stale
  /// between snapshots; the refresh hook re-exports them before each
  /// sample. Set once, by the owning testbed.
  void SetRefresh(std::function<void()> refresh) {
    refresh_ = std::move(refresh);
  }

  /// Arms the next tick (the first multiple of the interval strictly
  /// after now()) unless one is already scheduled. Call before every
  /// workload run: the sampler parks whenever the simulator drains.
  void EnsureRunning();

  /// Emits one final partial sample covering [last tick, now()] — the
  /// tail of a run that ended between ticks. No-op when now() is already
  /// sampled.
  void SampleFinal();

  sim::Time interval() const { return interval_; }
  std::uint64_t samples() const { return samples_; }

 private:
  void Tick();
  void EmitSample(sim::Time t);

  sim::Simulator& sim_;
  MetricsRegistry& metrics_;
  TimelineWriter& writer_;
  sim::Time interval_;
  std::string tb_;
  std::function<void()> refresh_;
  /// Previous cumulative counter values, for delta computation. Ordered,
  /// so sample records list counters deterministically.
  std::map<std::string, double> prev_counters_;
  sim::Time last_sample_t_ = 0;
  bool scheduled_ = false;
  std::uint64_t samples_ = 0;
};

}  // namespace zstor::telemetry
