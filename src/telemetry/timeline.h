// The timeline stream: virtual-time observability records (JSONL) that
// replay a run as "what was the device doing at t=X" — the time-varying
// counterpart of the end-of-run metrics snapshot. Four record types, each
// one JSON object per line (schemas in DESIGN.md §10):
//
//   {"type":"sample", "t":..., "tb":"...", "interval_ns":..., ...}
//       periodic counter deltas / gauge levels / interval histogram
//       quantiles, emitted by telemetry::MetricSampler (sampler.h)
//   {"type":"zone_state", "t":..., "zone":N, "from":"...", "to":"..."}
//       a zone-lifecycle transition (zns::ZnsDevice::SetZoneState)
//   {"type":"die_busy", "t":..., "dur":..., "die":N, "ops":..,
//    "busy_ns":..}
//       a coalesced window of die cell-service activity (nand::FlashArray
//       merges per-op service intervals whose gaps are below
//       die_merge_gap_ns, so a saturated die yields one long window
//       instead of one record per page op)
//   {"type":"window", "t":..., "dur":..., "kind":"gc.migrate"|...}
//       an activity window that can interfere with host I/O: FTL GC
//       phases, zone resets, media errors (dur 0)
//
// Every record carries the emitting testbed's label ("tb") and — for
// device-scoped records — the striped-stack lane index, so multi-device
// runs stay attributable per device. All timestamps are virtual
// nanoseconds; the stream is deterministic for a fixed seed because every
// emit is driven by simulator events.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace zstor::telemetry {

/// Interval histogram stats destined for a "sample" record (mirrors
/// sim::LatencyHistogram::IntervalStats plus the instrument name).
struct TimelineHist {
  std::string name;
  std::uint64_t count = 0;
  double mean_ns = 0.0, p50_ns = 0.0, p95_ns = 0.0, p99_ns = 0.0,
         max_ns = 0.0;
};

/// Appends timeline records to a file, or captures them into a caller's
/// string (tests; also what makes byte-identity assertions cheap).
class TimelineWriter {
 public:
  /// File mode; ok() reports whether the open succeeded.
  explicit TimelineWriter(const std::string& path);
  /// Capture mode: records append to *capture (non-owning).
  explicit TimelineWriter(std::string* capture);
  ~TimelineWriter();
  TimelineWriter(const TimelineWriter&) = delete;
  TimelineWriter& operator=(const TimelineWriter&) = delete;

  bool ok() const { return capture_ != nullptr || file_ != nullptr; }
  std::uint64_t written() const { return written_; }
  void Flush();

  /// The largest idle gap (ns) FlashArray still merges into one die_busy
  /// window. Derived from the sample interval by default: fine enough to
  /// localize activity within a sample, coarse enough that a moderately
  /// busy die emits one window per burst instead of one per op.
  sim::Time die_merge_gap_ns() const { return die_merge_gap_ns_; }
  void set_die_merge_gap_ns(sim::Time gap) { die_merge_gap_ns_ = gap; }
  static sim::Time DefaultMergeGap(sim::Time sample_interval);

  /// One periodic sample: counter deltas over the interval (zero deltas
  /// omitted — readers treat a missing counter as 0), current gauge
  /// levels, and interval histogram quantiles (empty histograms omitted).
  void Sample(sim::Time t, const std::string& tb, sim::Time interval_ns,
              const std::vector<std::pair<std::string, double>>& deltas,
              const std::vector<std::pair<std::string, double>>& gauges,
              const std::vector<TimelineHist>& hists);
  void ZoneState(sim::Time t, const std::string& tb, std::uint32_t lane,
                 std::uint32_t zone, std::string_view from,
                 std::string_view to);
  void DieBusy(sim::Time t, sim::Time dur, const std::string& tb,
               std::uint32_t lane, std::uint32_t die, std::uint64_t ops,
               sim::Time busy_ns);
  void Window(sim::Time t, sim::Time dur, const std::string& tb,
              std::uint32_t lane, const char* kind, std::int64_t a = 0,
              std::int64_t b = 0);

  /// Appends pre-rendered record lines verbatim (a chunk of whole
  /// "...\n"-terminated lines). The parallel engine points each lane's
  /// telemetry at a capture-mode writer and concatenates the captures
  /// into the real writer in lane order at flush, which keeps the merged
  /// stream deterministic for any thread count.
  void AppendRaw(const std::string& chunk);

 private:
  void WriteLine(const std::string& line);

  std::FILE* file_ = nullptr;
  std::string* capture_ = nullptr;
  std::uint64_t written_ = 0;
  sim::Time die_merge_gap_ns_ = 0;
};

}  // namespace zstor::telemetry
