#include "telemetry/json.h"

#include <cmath>
#include <cstdio>

namespace zstor::telemetry {

void AppendJsonString(std::string& out, std::string_view s) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

void AppendJsonNumber(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[64];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.6g", v);
  }
  out += buf;
}

std::string JsonQuoted(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  AppendJsonString(out, s);
  return out;
}

}  // namespace zstor::telemetry
