// Named metrics shared by every layer: monotonic counters, point-in-time
// gauges, and latency histograms, all living in one MetricsRegistry so a
// run can be summarized as a single JSON snapshot. Layers either register
// live instruments (hot-path increments) or batch-export their internal
// counter structs at snapshot time via a `Describe(MetricsRegistry&)`
// method — ZnsCounters, ftl::ConvCounters, nand::FlashCounters and
// workload::JobResult all speak that one protocol.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/stats.h"

namespace zstor::telemetry {

/// A monotonically increasing count (events, bytes, retries...).
class Counter {
 public:
  void Add(std::uint64_t delta = 1) { value_ += delta; }
  /// Overwrites the value — for batch export from an external tally.
  void Set(std::uint64_t value) { value_ = value; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// A point-in-time level (occupancy, fraction, amplification factor...).
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// A name -> instrument directory. Instruments are created on first use
/// and live as long as the registry; re-requesting a name returns the
/// same instrument. Requesting an existing name as a different kind is a
/// programming error and aborts.
class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  sim::LatencyHistogram& GetHistogram(const std::string& name);

  /// Folds another registry into this one: counters add, gauges take the
  /// other's value (last-writer-wins, matching Describe semantics),
  /// histograms merge. The parallel Testbed gives each device lane its
  /// own registry and folds them into the coordinator's at Finish, in
  /// lane order, so the merged snapshot is thread-count independent.
  void MergeFrom(const MetricsRegistry& other);

  struct Snapshot;
  Snapshot TakeSnapshot() const;
  /// Like TakeSnapshot(), but histogram entries carry *interval* stats —
  /// the samples recorded since the previous TakeIntervalSnapshot() —
  /// via sim::LatencyHistogram::TakeInterval(). Counters and gauges are
  /// reported cumulatively as usual (the sampler diffs counters itself).
  /// Cumulative histogram stats, and thus --metrics output, are
  /// undisturbed.
  Snapshot TakeIntervalSnapshot();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<sim::LatencyHistogram> histogram;
  };
  Entry& Lookup(const std::string& name, Kind kind);

  std::map<std::string, Entry> entries_;  // ordered => sorted snapshots
};

/// A frozen, exportable copy of a registry's state.
struct MetricsRegistry::Snapshot {
  struct Metric {
    std::string name;
    std::string kind;     // "counter" | "gauge" | "histogram"
    double value = 0.0;   // counter/gauge value, histogram count
    // Histogram-only summary (nanoseconds).
    double mean = 0.0, p50 = 0.0, p95 = 0.0, p99 = 0.0, max = 0.0;
  };
  std::vector<Metric> metrics;  // sorted by name

  const Metric* Find(const std::string& name) const;
  /// One JSON object: {"metric.name": ..., ...}; histograms expand into
  /// an object with count/mean/percentile fields.
  std::string ToJson() const;
};

using Snapshot = MetricsRegistry::Snapshot;

}  // namespace zstor::telemetry
