#include "telemetry/metrics.h"

#include "sim/check.h"
#include "telemetry/json.h"

namespace zstor::telemetry {

MetricsRegistry::Entry& MetricsRegistry::Lookup(const std::string& name,
                                                Kind kind) {
  auto [it, inserted] = entries_.try_emplace(name);
  Entry& e = it->second;
  if (inserted) {
    e.kind = kind;
    switch (kind) {
      case Kind::kCounter: e.counter = std::make_unique<Counter>(); break;
      case Kind::kGauge: e.gauge = std::make_unique<Gauge>(); break;
      case Kind::kHistogram:
        e.histogram = std::make_unique<sim::LatencyHistogram>();
        break;
    }
  } else {
    ZSTOR_CHECK_MSG(e.kind == kind,
                    "metric registered twice with different kinds");
  }
  return e;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  return *Lookup(name, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  return *Lookup(name, Kind::kGauge).gauge;
}

sim::LatencyHistogram& MetricsRegistry::GetHistogram(const std::string& name) {
  return *Lookup(name, Kind::kHistogram).histogram;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const auto& [name, e] : other.entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        GetCounter(name).Add(e.counter->value());
        break;
      case Kind::kGauge:
        GetGauge(name).Set(e.gauge->value());
        break;
      case Kind::kHistogram:
        GetHistogram(name).Merge(*e.histogram);
        break;
    }
  }
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  Snapshot snap;
  snap.metrics.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    Snapshot::Metric m;
    m.name = name;
    switch (e.kind) {
      case Kind::kCounter:
        m.kind = "counter";
        m.value = static_cast<double>(e.counter->value());
        break;
      case Kind::kGauge:
        m.kind = "gauge";
        m.value = e.gauge->value();
        break;
      case Kind::kHistogram: {
        const auto& h = *e.histogram;
        m.kind = "histogram";
        m.value = static_cast<double>(h.count());
        if (h.count() > 0) {
          m.mean = h.mean_ns();
          m.p50 = h.p50_ns();
          m.p95 = h.p95_ns();
          m.p99 = h.p99_ns();
          m.max = h.max_ns();
        }
        break;
      }
    }
    snap.metrics.push_back(std::move(m));
  }
  return snap;
}

MetricsRegistry::Snapshot MetricsRegistry::TakeIntervalSnapshot() {
  Snapshot snap;
  snap.metrics.reserve(entries_.size());
  for (auto& [name, e] : entries_) {
    Snapshot::Metric m;
    m.name = name;
    switch (e.kind) {
      case Kind::kCounter:
        m.kind = "counter";
        m.value = static_cast<double>(e.counter->value());
        break;
      case Kind::kGauge:
        m.kind = "gauge";
        m.value = e.gauge->value();
        break;
      case Kind::kHistogram: {
        sim::LatencyHistogram::IntervalStats s = e.histogram->TakeInterval();
        m.kind = "histogram";
        m.value = static_cast<double>(s.count);
        if (s.count > 0) {
          m.mean = s.mean_ns;
          m.p50 = s.p50_ns;
          m.p95 = s.p95_ns;
          m.p99 = s.p99_ns;
          m.max = s.max_ns;
        }
        break;
      }
    }
    snap.metrics.push_back(std::move(m));
  }
  return snap;
}

const Snapshot::Metric* Snapshot::Find(const std::string& name) const {
  for (const auto& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

std::string Snapshot::ToJson() const {
  std::string out = "{";
  bool first = true;
  for (const auto& m : metrics) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(out, m.name);
    out += ":";
    if (m.kind == "histogram") {
      out += "{\"count\":";
      AppendJsonNumber(out, m.value);
      out += ",\"mean_ns\":";
      AppendJsonNumber(out, m.mean);
      out += ",\"p50_ns\":";
      AppendJsonNumber(out, m.p50);
      out += ",\"p95_ns\":";
      AppendJsonNumber(out, m.p95);
      out += ",\"p99_ns\":";
      AppendJsonNumber(out, m.p99);
      out += ",\"max_ns\":";
      AppendJsonNumber(out, m.max);
      out += "}";
    } else {
      AppendJsonNumber(out, m.value);
    }
  }
  out += "}";
  return out;
}

}  // namespace zstor::telemetry
