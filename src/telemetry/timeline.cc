#include "telemetry/timeline.h"

#include <algorithm>

#include "telemetry/json.h"

namespace zstor::telemetry {

TimelineWriter::TimelineWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    std::fprintf(stderr, "warning: cannot open timeline file %s\n",
                 path.c_str());
  }
}

TimelineWriter::TimelineWriter(std::string* capture) : capture_(capture) {}

TimelineWriter::~TimelineWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void TimelineWriter::Flush() {
  if (file_ != nullptr) std::fflush(file_);
}

sim::Time TimelineWriter::DefaultMergeGap(sim::Time sample_interval) {
  return std::clamp<sim::Time>(sample_interval / 20, sim::Microseconds(2),
                               sim::Milliseconds(5));
}

void TimelineWriter::AppendRaw(const std::string& chunk) {
  if (chunk.empty()) return;
  if (capture_ != nullptr) {
    *capture_ += chunk;
  } else if (file_ != nullptr) {
    std::fwrite(chunk.data(), 1, chunk.size(), file_);
  } else {
    return;
  }
  written_ += static_cast<std::uint64_t>(
      std::count(chunk.begin(), chunk.end(), '\n'));
}

void TimelineWriter::WriteLine(const std::string& line) {
  if (capture_ != nullptr) {
    *capture_ += line;
    *capture_ += '\n';
  } else if (file_ != nullptr) {
    std::fprintf(file_, "%s\n", line.c_str());
  } else {
    return;
  }
  ++written_;
}

namespace {

void AppendHeader(std::string& out, const char* type, sim::Time t,
                  const std::string& tb) {
  out += "{\"type\":\"";
  out += type;
  out += "\",\"t\":";
  out += std::to_string(t);
  out += ",\"tb\":";
  AppendJsonString(out, tb);
}

}  // namespace

void TimelineWriter::Sample(
    sim::Time t, const std::string& tb, sim::Time interval_ns,
    const std::vector<std::pair<std::string, double>>& deltas,
    const std::vector<std::pair<std::string, double>>& gauges,
    const std::vector<TimelineHist>& hists) {
  std::string out;
  AppendHeader(out, "sample", t, tb);
  out += ",\"interval_ns\":";
  out += std::to_string(interval_ns);
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, delta] : deltas) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(out, name);
    out += ":";
    AppendJsonNumber(out, delta);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(out, name);
    out += ":";
    AppendJsonNumber(out, value);
  }
  out += "},\"hist\":{";
  first = true;
  for (const TimelineHist& h : hists) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(out, h.name);
    out += ":{\"count\":";
    out += std::to_string(h.count);
    out += ",\"mean_ns\":";
    AppendJsonNumber(out, h.mean_ns);
    out += ",\"p50_ns\":";
    AppendJsonNumber(out, h.p50_ns);
    out += ",\"p95_ns\":";
    AppendJsonNumber(out, h.p95_ns);
    out += ",\"p99_ns\":";
    AppendJsonNumber(out, h.p99_ns);
    out += ",\"max_ns\":";
    AppendJsonNumber(out, h.max_ns);
    out += "}";
  }
  out += "}}";
  WriteLine(out);
}

void TimelineWriter::ZoneState(sim::Time t, const std::string& tb,
                               std::uint32_t lane, std::uint32_t zone,
                               std::string_view from, std::string_view to) {
  std::string out;
  AppendHeader(out, "zone_state", t, tb);
  out += ",\"lane\":";
  out += std::to_string(lane);
  out += ",\"zone\":";
  out += std::to_string(zone);
  out += ",\"from\":";
  AppendJsonString(out, from);
  out += ",\"to\":";
  AppendJsonString(out, to);
  out += "}";
  WriteLine(out);
}

void TimelineWriter::DieBusy(sim::Time t, sim::Time dur, const std::string& tb,
                             std::uint32_t lane, std::uint32_t die,
                             std::uint64_t ops, sim::Time busy_ns) {
  std::string out;
  AppendHeader(out, "die_busy", t, tb);
  out += ",\"dur\":";
  out += std::to_string(dur);
  out += ",\"lane\":";
  out += std::to_string(lane);
  out += ",\"die\":";
  out += std::to_string(die);
  out += ",\"ops\":";
  out += std::to_string(ops);
  out += ",\"busy_ns\":";
  out += std::to_string(busy_ns);
  out += "}";
  WriteLine(out);
}

void TimelineWriter::Window(sim::Time t, sim::Time dur, const std::string& tb,
                            std::uint32_t lane, const char* kind,
                            std::int64_t a, std::int64_t b) {
  std::string out;
  AppendHeader(out, "window", t, tb);
  out += ",\"dur\":";
  out += std::to_string(dur);
  out += ",\"lane\":";
  out += std::to_string(lane);
  out += ",\"kind\":";
  AppendJsonString(out, kind);
  out += ",\"a\":";
  out += std::to_string(a);
  out += ",\"b\":";
  out += std::to_string(b);
  out += "}";
  WriteLine(out);
}

}  // namespace zstor::telemetry
