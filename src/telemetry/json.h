// Minimal JSON writing helpers shared by every JSON producer in the tree
// (trace JSONL, metrics snapshots, log pages, bench results): correct
// string escaping and finite-number formatting in one place, so no writer
// ever emits invalid JSON for a hostile label or a NaN statistic.
#pragma once

#include <string>
#include <string_view>

namespace zstor::telemetry {

/// Appends the JSON string literal for `s` — surrounding quotes plus
/// escapes for quotes, backslashes and control characters.
void AppendJsonString(std::string& out, std::string_view s);

/// Appends a JSON number. Non-finite values (NaN/Inf have no JSON
/// representation) become `null`; integral values print without a
/// fractional part.
void AppendJsonNumber(std::string& out, double v);

/// Convenience: the escaped-and-quoted form of `s` as a new string.
std::string JsonQuoted(std::string_view s);

}  // namespace zstor::telemetry
