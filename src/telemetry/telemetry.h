// The per-testbed telemetry bundle: one Tracer plus one MetricsRegistry,
// handed (non-owning) to every layer via AttachTelemetry(). A null
// Telemetry* anywhere means "disabled" and costs one branch per would-be
// emit — see DESIGN.md §7 for the architecture and overhead argument.
#pragma once

#include <memory>
#include <string>
#include <utility>

#include "telemetry/metrics.h"
#include "telemetry/timeline.h"
#include "telemetry/trace.h"

namespace zstor::telemetry {

class Telemetry {
 public:
  Telemetry() = default;
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  Tracer& tracer() { return tracer_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Installs an owned sink (replacing any previous one).
  void SetSink(std::unique_ptr<TraceSink> sink) {
    owned_sink_ = std::move(sink);
    tracer_.SetSink(owned_sink_.get());
  }
  /// Points the tracer at a sink owned elsewhere (e.g. a process-wide
  /// JSONL file shared by several testbeds).
  void SetExternalSink(TraceSink* sink) {
    owned_sink_.reset();
    tracer_.SetSink(sink);
  }
  /// Detaches and returns the owned sink (null when the sink is external
  /// or absent). The tracer keeps pointing at the detached object, so the
  /// caller must install a replacement next. The parallel Testbed uses
  /// this to interpose a per-lane ShardSink in front of the real sink.
  std::unique_ptr<TraceSink> TakeOwnedSink() { return std::move(owned_sink_); }

  /// The timeline stream for state-change records (zone lifecycle, die
  /// busy windows, GC/reset/fault windows); null means "no timeline" and
  /// costs emit sites one branch, like a disabled tracer.
  TimelineWriter* timeline() { return timeline_; }
  /// The testbed label stamped into this bundle's timeline records.
  const std::string& timeline_label() const { return timeline_label_; }
  void set_timeline_label(std::string label) {
    timeline_label_ = std::move(label);
  }
  void SetTimeline(std::unique_ptr<TimelineWriter> writer) {
    owned_timeline_ = std::move(writer);
    timeline_ = owned_timeline_.get();
  }
  /// Points at a writer owned elsewhere (the process-wide --timeline
  /// file shared by every testbed a bench builds).
  void SetExternalTimeline(TimelineWriter* writer) {
    owned_timeline_.reset();
    timeline_ = writer;
  }
  /// Detaches and returns the owned timeline writer (null when external
  /// or absent); timeline() keeps pointing at the detached object until
  /// the caller installs a replacement (same contract as TakeOwnedSink).
  std::unique_ptr<TimelineWriter> TakeOwnedTimeline() {
    return std::move(owned_timeline_);
  }

  void Flush() {
    if (tracer_.sink() != nullptr) tracer_.sink()->Flush();
    if (timeline_ != nullptr) timeline_->Flush();
  }

 private:
  Tracer tracer_;
  MetricsRegistry metrics_;
  std::unique_ptr<TraceSink> owned_sink_;
  std::unique_ptr<TimelineWriter> owned_timeline_;
  TimelineWriter* timeline_ = nullptr;
  std::string timeline_label_;
};

}  // namespace zstor::telemetry
