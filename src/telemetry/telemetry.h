// The per-testbed telemetry bundle: one Tracer plus one MetricsRegistry,
// handed (non-owning) to every layer via AttachTelemetry(). A null
// Telemetry* anywhere means "disabled" and costs one branch per would-be
// emit — see DESIGN.md §7 for the architecture and overhead argument.
#pragma once

#include <memory>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace zstor::telemetry {

class Telemetry {
 public:
  Telemetry() = default;
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  Tracer& tracer() { return tracer_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Installs an owned sink (replacing any previous one).
  void SetSink(std::unique_ptr<TraceSink> sink) {
    owned_sink_ = std::move(sink);
    tracer_.SetSink(owned_sink_.get());
  }
  /// Points the tracer at a sink owned elsewhere (e.g. a process-wide
  /// JSONL file shared by several testbeds).
  void SetExternalSink(TraceSink* sink) {
    owned_sink_.reset();
    tracer_.SetSink(sink);
  }

  void Flush() {
    if (tracer_.sink() != nullptr) tracer_.sink()->Flush();
  }

 private:
  Tracer tracer_;
  MetricsRegistry metrics_;
  std::unique_ptr<TraceSink> owned_sink_;
};

}  // namespace zstor::telemetry
