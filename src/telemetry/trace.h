// Event tracing for the simulator: where did a command's virtual time go?
//
// Every layer (host stack, queue pair, FCP, write-back buffer, zone state
// machine, NAND dies, FTL GC) emits TraceEvents into a Tracer. Each event
// is either a *span* (begin < end: a phase of a command's lifetime, e.g.
// "fcp.wait") or an *instant* (begin == end: a point occurrence, e.g. a
// zone state transition). Consecutive spans of one command tile the
// interval from host submission to host completion, so summing a
// command's span durations reproduces its application-observed latency —
// the per-command breakdown the paper's §IV argues emulators must expose.
//
// Tracing is off unless a sink is installed; every emit site guards on a
// single pointer check, so a disabled tracer costs nothing measurable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace zstor::telemetry {

/// The layer of the stack an event originated from.
enum class Layer : std::uint8_t {
  kHost,      // host software stack (syscall / SPDK submission paths)
  kQueue,     // NVMe queue pair (doorbell to CQE)
  kFcp,       // firmware command processor (serialized, priority-queued)
  kPost,      // post stage: DMA + firmware completion path
  kBuffer,    // write-back buffer admission (NAND drain backpressure)
  kZone,      // zone state machine and management commands
  kNand,      // flash dies and channels
  kFtl,       // conventional-device FTL (GC, mapping)
  kWorkload,  // workload generator
};

const char* ToString(Layer l);

struct TraceEvent {
  sim::Time begin = 0;
  sim::Time end = 0;        // == begin for instantaneous events
  std::uint64_t cmd = 0;    // command trace id; 0 = not command-scoped
  Layer layer = Layer::kHost;
  const char* name = "";    // static phase name, e.g. "fcp.wait"
  std::int64_t a = 0;       // small payload: zone/die/block id, opcode...
  std::int64_t b = 0;       // second payload: bytes, state, status...

  sim::Time duration() const { return end - begin; }
};

/// Receives every emitted event. Implementations must not assume events
/// arrive sorted by `begin`: a span is emitted when it *ends*.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnEvent(const TraceEvent& e) = 0;
  virtual void Flush() {}
};

/// Keeps the most recent `capacity` events in memory. The cheap always-on
/// choice: attach it for a whole run, inspect the tail after the fact.
class RingBufferSink : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity);

  void OnEvent(const TraceEvent& e) override;

  /// Buffered events, oldest first.
  std::vector<TraceEvent> Events() const;
  std::uint64_t total_events() const { return total_; }
  /// Events overwritten because the ring was full.
  std::uint64_t dropped() const {
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
  }
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::uint64_t total_ = 0;  // next sequence number; ring_[total_ % cap]
};

/// Appends one JSON object per event to a file (the `--trace=FILE` format;
/// schema documented in DESIGN.md §7). Line-buffered, flushed on
/// destruction.
class JsonlFileSink : public TraceSink {
 public:
  explicit JsonlFileSink(const std::string& path);
  ~JsonlFileSink() override;

  void OnEvent(const TraceEvent& e) override;
  void Flush() override;

  bool ok() const { return file_ != nullptr; }
  std::uint64_t written() const { return written_; }

 private:
  std::FILE* file_ = nullptr;
  std::uint64_t written_ = 0;
};

/// The emit facade held by every instrumented layer. Disabled (the default)
/// until a sink is attached; all emit paths are a null check away from
/// free.
class Tracer {
 public:
  bool enabled() const { return sink_ != nullptr; }
  /// Attaches a sink (non-owning; see Telemetry for the owning variant).
  void SetSink(TraceSink* sink) { sink_ = sink; }
  TraceSink* sink() const { return sink_; }

  void Emit(const TraceEvent& e) {
    if (sink_ != nullptr) sink_->OnEvent(e);
  }
  void Span(sim::Time begin, sim::Time end, std::uint64_t cmd, Layer layer,
            const char* name, std::int64_t a = 0, std::int64_t b = 0) {
    if (sink_ != nullptr) sink_->OnEvent({begin, end, cmd, layer, name, a, b});
  }
  void Instant(sim::Time at, std::uint64_t cmd, Layer layer,
               const char* name, std::int64_t a = 0, std::int64_t b = 0) {
    if (sink_ != nullptr) sink_->OnEvent({at, at, cmd, layer, name, a, b});
  }

  /// Allocates a command trace id, unique across the whole process (ids
  /// from concurrent testbeds never collide in a shared sink). Never 0.
  static std::uint64_t NextCmdId();

  /// Allocates a command trace id from this tracer. By default delegates
  /// to the process-wide NextCmdId(); after SetIdNamespace the tracer
  /// hands out `base + n` from a private counter instead. Never 0.
  std::uint64_t NextId() {
    if (id_base_ == 0) return NextCmdId();
    return id_base_ + ++id_next_;
  }

  /// Puts this tracer in namespaced-id mode. The parallel engine gives
  /// every lane's tracer a disjoint `base` so ids stay unique without a
  /// shared atomic — the per-lane counters make id assignment (and thus
  /// trace bytes) deterministic for any thread count, which the global
  /// atomic could not be.
  void SetIdNamespace(std::uint64_t base) {
    id_base_ = base;
    id_next_ = 0;
  }

 private:
  TraceSink* sink_ = nullptr;
  std::uint64_t id_base_ = 0;
  std::uint64_t id_next_ = 0;
};

/// Buffers every event in arrival order for later replay into another
/// sink. The parallel engine gives each lane's tracer a ShardSink so no
/// two threads ever touch the real (file/ring) sink concurrently; at
/// flush the shards are replayed in lane order, making the merged byte
/// stream deterministic for any thread count.
class ShardSink : public TraceSink {
 public:
  void OnEvent(const TraceEvent& e) override { events_.push_back(e); }

  /// Replays all buffered events into `out` (in arrival order) and
  /// clears the shard.
  void ReplayInto(TraceSink& out) {
    for (const TraceEvent& e : events_) out.OnEvent(e);
    events_.clear();
  }

  std::size_t size() const { return events_.size(); }
  const std::vector<TraceEvent>& events() const { return events_; }

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace zstor::telemetry
