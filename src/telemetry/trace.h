// Event tracing for the simulator: where did a command's virtual time go?
//
// Every layer (host stack, queue pair, FCP, write-back buffer, zone state
// machine, NAND dies, FTL GC) emits TraceEvents into a Tracer. Each event
// is either a *span* (begin < end: a phase of a command's lifetime, e.g.
// "fcp.wait") or an *instant* (begin == end: a point occurrence, e.g. a
// zone state transition). Consecutive spans of one command tile the
// interval from host submission to host completion, so summing a
// command's span durations reproduces its application-observed latency —
// the per-command breakdown the paper's §IV argues emulators must expose.
//
// Tracing is off unless a sink is installed; every emit site guards on a
// single pointer check, so a disabled tracer costs nothing measurable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace zstor::telemetry {

/// The layer of the stack an event originated from.
enum class Layer : std::uint8_t {
  kHost,      // host software stack (syscall / SPDK submission paths)
  kQueue,     // NVMe queue pair (doorbell to CQE)
  kFcp,       // firmware command processor (serialized, priority-queued)
  kPost,      // post stage: DMA + firmware completion path
  kBuffer,    // write-back buffer admission (NAND drain backpressure)
  kZone,      // zone state machine and management commands
  kNand,      // flash dies and channels
  kFtl,       // conventional-device FTL (GC, mapping)
  kWorkload,  // workload generator
};

const char* ToString(Layer l);

struct TraceEvent {
  sim::Time begin = 0;
  sim::Time end = 0;        // == begin for instantaneous events
  std::uint64_t cmd = 0;    // command trace id; 0 = not command-scoped
  Layer layer = Layer::kHost;
  const char* name = "";    // static phase name, e.g. "fcp.wait"
  std::int64_t a = 0;       // small payload: zone/die/block id, opcode...
  std::int64_t b = 0;       // second payload: bytes, state, status...

  sim::Time duration() const { return end - begin; }
};

/// Receives every emitted event. Implementations must not assume events
/// arrive sorted by `begin`: a span is emitted when it *ends*.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnEvent(const TraceEvent& e) = 0;
  virtual void Flush() {}
};

/// Keeps the most recent `capacity` events in memory. The cheap always-on
/// choice: attach it for a whole run, inspect the tail after the fact.
class RingBufferSink : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity);

  void OnEvent(const TraceEvent& e) override;

  /// Buffered events, oldest first.
  std::vector<TraceEvent> Events() const;
  std::uint64_t total_events() const { return total_; }
  /// Events overwritten because the ring was full.
  std::uint64_t dropped() const {
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
  }
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::uint64_t total_ = 0;  // next sequence number; ring_[total_ % cap]
};

/// Appends one JSON object per event to a file (the `--trace=FILE` format;
/// schema documented in DESIGN.md §7). Line-buffered, flushed on
/// destruction.
class JsonlFileSink : public TraceSink {
 public:
  explicit JsonlFileSink(const std::string& path);
  ~JsonlFileSink() override;

  void OnEvent(const TraceEvent& e) override;
  void Flush() override;

  bool ok() const { return file_ != nullptr; }
  std::uint64_t written() const { return written_; }

 private:
  std::FILE* file_ = nullptr;
  std::uint64_t written_ = 0;
};

/// The emit facade held by every instrumented layer. Disabled (the default)
/// until a sink is attached; all emit paths are a null check away from
/// free.
class Tracer {
 public:
  bool enabled() const { return sink_ != nullptr; }
  /// Attaches a sink (non-owning; see Telemetry for the owning variant).
  void SetSink(TraceSink* sink) { sink_ = sink; }
  TraceSink* sink() const { return sink_; }

  void Emit(const TraceEvent& e) {
    if (sink_ != nullptr) sink_->OnEvent(e);
  }
  void Span(sim::Time begin, sim::Time end, std::uint64_t cmd, Layer layer,
            const char* name, std::int64_t a = 0, std::int64_t b = 0) {
    if (sink_ != nullptr) sink_->OnEvent({begin, end, cmd, layer, name, a, b});
  }
  void Instant(sim::Time at, std::uint64_t cmd, Layer layer,
               const char* name, std::int64_t a = 0, std::int64_t b = 0) {
    if (sink_ != nullptr) sink_->OnEvent({at, at, cmd, layer, name, a, b});
  }

  /// Allocates a command trace id, unique across the whole process (ids
  /// from concurrent testbeds never collide in a shared sink). Never 0.
  static std::uint64_t NextCmdId();

 private:
  TraceSink* sink_ = nullptr;
};

}  // namespace zstor::telemetry
