#include "telemetry/sampler.h"

#include <utility>

#include "sim/check.h"

namespace zstor::telemetry {

MetricSampler::MetricSampler(sim::Simulator& sim, MetricsRegistry& metrics,
                             TimelineWriter& writer, sim::Time interval,
                             std::string tb)
    : sim_(sim),
      metrics_(metrics),
      writer_(writer),
      interval_(interval),
      tb_(std::move(tb)) {
  ZSTOR_CHECK_MSG(interval_ > 0, "sample interval must be positive");
}

void MetricSampler::EnsureRunning() {
  if (scheduled_) return;
  scheduled_ = true;
  sim::Time next = (sim_.now() / interval_ + 1) * interval_;
  sim_.ScheduleAt(next, [this] { Tick(); });
}

void MetricSampler::Tick() {
  scheduled_ = false;
  EmitSample(sim_.now());
  // Re-arm only while the run is still producing events: this tick has
  // already been popped, so pending_events() == 0 means the sampler is
  // the only thing left alive and must park for Run() to return.
  if (sim_.pending_events() > 0) {
    scheduled_ = true;
    sim_.ScheduleIn(interval_, [this] { Tick(); });
  }
}

void MetricSampler::SampleFinal() {
  // Nothing new since the last tick (or nothing ever ran): no record.
  if (sim_.now() <= last_sample_t_) return;
  EmitSample(sim_.now());
}

void MetricSampler::EmitSample(sim::Time t) {
  if (refresh_) refresh_();
  std::vector<std::pair<std::string, double>> deltas;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<TimelineHist> hists;
  Snapshot snap = metrics_.TakeIntervalSnapshot();
  for (const Snapshot::Metric& m : snap.metrics) {
    if (m.kind == "counter") {
      double& prev = prev_counters_[m.name];
      double delta = m.value - prev;
      prev = m.value;
      // Zero deltas are omitted; readers treat a missing counter as 0.
      if (delta != 0.0) deltas.emplace_back(m.name, delta);
    } else if (m.kind == "gauge") {
      gauges.emplace_back(m.name, m.value);
    } else if (m.kind == "histogram" && m.value > 0) {
      TimelineHist h;
      h.name = m.name;
      h.count = static_cast<std::uint64_t>(m.value);
      h.mean_ns = m.mean;
      h.p50_ns = m.p50;
      h.p95_ns = m.p95;
      h.p99_ns = m.p99;
      h.max_ns = m.max;
      hists.push_back(std::move(h));
    }
  }
  writer_.Sample(t, tb_, t - last_sample_t_, deltas, gauges, hists);
  last_sample_t_ = t;
  ++samples_;
}

}  // namespace zstor::telemetry
