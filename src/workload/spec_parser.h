// fio-style job specification parser: builds a JobSpec from a compact
// "key=value ..." string, so experiments can be described the way the
// paper's fio jobs were.
//
//   op=append random=1 bs=16k qd=8 workers=4 zones=0-11 rate=250m
//   duration=2s warmup=500ms on_full=reset rwmix=70 zipf=0.99
//
// Keys:
//   op        read | write | append | reset | finish | open | close
//             (the last four make a zone-management job)
//   bs        request size: plain bytes or k/m suffix (KiB/MiB)
//   qd        queue depth            workers   worker count
//   zones     comma list and/or a-b ranges ("0-3,7,9-11")
//   partition 0|1 (split zones across workers)
//   random    0|1                    zipf      theta in (0,1)
//   rwmix     percent of reads in a mixed job (fio rwmixread)
//   rate      bytes/s with optional k/m suffix (MiB/s etc.)
//   duration  time with ms/s/us suffix          warmup    likewise
//   on_full   stop | advance | reset
//   seed      integer
#pragma once

#include <string>
#include <string_view>

#include "workload/job.h"

namespace zstor::workload {

struct ParseResult {
  bool ok = false;
  std::string error;  // filled when !ok
  JobSpec spec;
};

/// Parses `text`; unknown keys and malformed values produce ok=false with
/// a message naming the offending token.
ParseResult ParseJobSpec(std::string_view text);

}  // namespace zstor::workload
