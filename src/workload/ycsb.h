// YCSB-style key-value workload driver (Cooper et al., SoCC '10) over
// the repo's ZipfGenerator — the standard benchmark shape for LSM
// engines, here driving zkv (or any KvBackend) inside the simulator.
//
// Core mixes:
//   A  update-heavy   50% read / 50% update
//   B  read-mostly    95% read /  5% update
//   C  read-only     100% read
//   F  read-modify-write  50% read / 50% RMW (read then update)
//
// Key popularity follows the zipfian request distribution (theta in
// (0,1); 0 selects uniform). Like YCSB itself, ranks are scattered over
// the key space by a hash so the hottest keys are not neighbors.
//
// Determinism: `workers` coroutines each draw from a private sim::Rng
// seeded from (seed, worker); histograms merge in worker order. Two runs
// with the same spec produce identical operation streams and results.
#pragma once

#include <cstdint>
#include <string_view>

#include "nvme/types.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "telemetry/metrics.h"

namespace zstor::workload {

/// The engine under test. zkv::KvStore implements this; the driver knows
/// nothing about zones, so it also runs against mocks in unit tests.
class KvBackend {
 public:
  virtual ~KvBackend() = default;
  virtual sim::Task<nvme::Status> Put(std::uint64_t key,
                                      std::uint64_t value_bytes) = 0;
  /// *found (optional) reports whether the key held a live value; the
  /// status covers the reads the lookup issued.
  virtual sim::Task<nvme::Status> Get(std::uint64_t key,
                                      bool* found) = 0;
};

enum class YcsbMix : std::uint8_t { kA, kB, kC, kF };

constexpr std::string_view ToString(YcsbMix m) {
  switch (m) {
    case YcsbMix::kA: return "A";
    case YcsbMix::kB: return "B";
    case YcsbMix::kC: return "C";
    case YcsbMix::kF: return "F";
  }
  return "?";
}

struct YcsbSpec {
  YcsbMix mix = YcsbMix::kA;
  std::uint64_t record_count = 1024;
  std::uint64_t operations = 4096;
  std::uint64_t value_bytes = 4096;
  /// Zipfian skew of the request distribution; 0 = uniform.
  double zipf_theta = 0.99;
  std::uint32_t workers = 4;
  std::uint64_t seed = 1;
};

struct YcsbResult {
  std::uint64_t ops = 0;
  std::uint64_t reads = 0;
  std::uint64_t updates = 0;   // plain updates + the update half of RMWs
  std::uint64_t rmws = 0;
  std::uint64_t not_found = 0;
  std::uint64_t errors = 0;    // non-success statuses from the backend
  sim::LatencyHistogram read_latency;
  sim::LatencyHistogram update_latency;
  sim::Time span = 0;          // first submission to last completion

  double Kiops() const {
    if (span == 0) return 0.0;
    return static_cast<double>(ops) / (static_cast<double>(span) / 1e6);
  }
  void Describe(telemetry::MetricsRegistry& m) const;
};

class YcsbRunner {
 public:
  YcsbRunner(sim::Simulator& s, KvBackend& kv, YcsbSpec spec);

  /// Loads records 0..record_count-1 (sequential keys, `workers`-wide).
  sim::Task<> Load();
  /// Runs `operations` ops of the spec's mix and returns the merged
  /// result.
  sim::Task<YcsbResult> Run();

 private:
  /// Scatters a popularity rank over the key space (FNV-1a, like YCSB's
  /// hashed key order).
  std::uint64_t RankToKey(std::uint64_t rank) const;
  sim::Task<> LoadWorker(std::uint64_t first, std::uint64_t count,
                         sim::WaitGroup* wg);
  sim::Task<> RunWorker(std::uint32_t worker, std::uint64_t ops,
                        YcsbResult* out, sim::WaitGroup* wg);

  sim::Simulator& sim_;
  KvBackend& kv_;
  YcsbSpec spec_;
};

}  // namespace zstor::workload
