#include "workload/runner.h"

#include <algorithm>
#include <unordered_map>

#include "sim/check.h"
#include "workload/zipf.h"

namespace zstor::workload {

using nvme::Command;
using nvme::Opcode;
using nvme::ZoneAction;
using sim::Time;

Job::Job(sim::Simulator& s, hostif::Stack& stack, JobSpec spec)
    : sim_(s),
      stack_(stack),
      spec_(std::move(spec)),
      join_(s),
      rng_(spec_.seed) {
  ZSTOR_CHECK(spec_.workers > 0);
  ZSTOR_CHECK(spec_.queue_depth > 0);
  ZSTOR_CHECK(spec_.request_bytes % stack_.info().format.lba_bytes == 0);
  ZSTOR_CHECK(spec_.warmup <= spec_.duration);
  if (stack_.info().zoned) {
    if (spec_.zones.empty()) {
      for (std::uint32_t z = 0; z < stack_.info().num_zones; ++z) {
        spec_.zones.push_back(z);
      }
    }
    if (spec_.op == Opcode::kWrite && spec_.workers > 1) {
      // Sequential writes need a single writer per zone.
      ZSTOR_CHECK_MSG(spec_.partition_zones,
                      "multi-worker write jobs must partition zones");
    }
  } else {
    // Conventional namespace: no zones; appends/mgmt are meaningless.
    ZSTOR_CHECK(spec_.op == Opcode::kRead || spec_.op == Opcode::kWrite);
    spec_.zones = {0};
    spec_.partition_zones = false;
  }
  if (spec_.rate_bytes_per_sec > 0) {
    double burst = std::max(static_cast<double>(spec_.request_bytes),
                            spec_.rate_bytes_per_sec * 0.01);
    bucket_ = std::make_unique<sim::TokenBucket>(
        s, spec_.rate_bytes_per_sec, burst);
  }
  result_.series = sim::TimeSeries(spec_.series_bin);
  result_.measured_span = spec_.duration - spec_.warmup;
}

std::vector<std::uint32_t> ZoneSlice(const std::vector<std::uint32_t>& zones,
                                     std::uint32_t workers,
                                     std::uint32_t wid) {
  // Contiguous even split; earlier workers take the remainder.
  std::vector<std::uint32_t> out;
  std::size_t n = zones.size();
  std::size_t base = n / workers;
  std::size_t extra = n % workers;
  std::size_t begin = wid * base + std::min<std::size_t>(wid, extra);
  std::size_t len = base + (wid < extra ? 1 : 0);
  for (std::size_t i = begin; i < begin + len; ++i) {
    out.push_back(zones[i]);
  }
  return out;
}

std::vector<std::uint32_t> Job::ZonesForWorker(std::uint32_t wid) const {
  if (!spec_.partition_zones) return spec_.zones;
  return ZoneSlice(spec_.zones, spec_.workers, wid);
}

void Job::Start() {
  ZSTOR_CHECK(!started_);
  started_ = true;
  start_time_ = sim_.now();
  end_time_ = start_time_ + spec_.duration;
  auto spawn = [this](std::uint32_t w) {
    ZSTOR_CHECK(w < spec_.workers);
    join_.Add();
    if (spec_.op == Opcode::kZoneMgmtSend) {
      sim::Spawn(MgmtWorker(w));
    } else {
      sim::Spawn(IoWorker(w));
    }
  };
  if (spec_.worker_ids.empty()) {
    for (std::uint32_t w = 0; w < spec_.workers; ++w) spawn(w);
  } else {
    // A shard of the job: only these worker ids run here, but each
    // behaves exactly as it would in the full job (same RNG stream,
    // same zone slice — both keyed on the id and the full count).
    for (std::uint32_t w : spec_.worker_ids) spawn(w);
  }
}

void Job::Stop() {
  ZSTOR_CHECK(started_);
  if (sim_.now() < end_time_) {
    end_time_ = sim_.now();
    result_.measured_span =
        end_time_ > start_time_ + spec_.warmup
            ? end_time_ - start_time_ - spec_.warmup
            : 0;
  }
}

void Job::RecordCompletion(const nvme::TimedCompletion& tc,
                           std::uint64_t bytes, bool is_read) {
  result_.series.Record(tc.completed - start_time_,
                        static_cast<double>(bytes));
  if (tc.completed < start_time_ + spec_.warmup || tc.completed > end_time_) {
    return;  // outside the measurement window
  }
  if (!tc.completion.ok()) {
    result_.errors++;
    return;
  }
  result_.latency.Record(tc.latency());
  if (is_read) {
    result_.read_latency.Record(tc.latency());
  } else {
    result_.write_latency.Record(tc.latency());
  }
  result_.ops++;
  result_.bytes += bytes;
}

sim::Task<> Job::IssueOne(Command cmd, std::uint64_t bytes,
                          sim::Semaphore* slots,
                          sim::WaitGroup* outstanding) {
  nvme::TimedCompletion tc = co_await stack_.Submit(cmd);
  RecordCompletion(tc, bytes, cmd.opcode == Opcode::kRead);
  slots->Release();
  outstanding->Done();
}

sim::Task<> Job::IoWorker(std::uint32_t wid) {
  const std::vector<std::uint32_t> zones = ZonesForWorker(wid);
  const nvme::NamespaceInfo& info = stack_.info();
  const std::uint32_t lba = info.format.lba_bytes;
  // On a conventional namespace the whole LBA space is one "region".
  const std::uint64_t cap_bytes = info.zoned
                                      ? info.zone_cap_lbas * lba
                                      : info.capacity_lbas * lba;
  const std::uint64_t zone_size_lbas = info.zoned ? info.zone_size_lbas : 0;
  const std::uint64_t req = spec_.request_bytes;
  const auto nlb = static_cast<std::uint32_t>(req / lba);
  ZSTOR_CHECK(req <= cap_bytes);
  if (zones.empty()) {
    join_.Done();
    co_return;
  }

  sim::Semaphore slots(sim_, spec_.queue_depth);
  sim::WaitGroup outstanding(sim_);
  sim::Rng rng(spec_.seed * 0x9E3779B97F4A7C15ull + wid + 1);

  std::size_t zi = 0;           // current zone index (sequential modes)
  std::uint64_t next_off = 0;   // sequential offset within current zone
  // Host-side estimate of zone fill for writers (bytes issued so far).
  std::unordered_map<std::uint32_t, std::uint64_t> fill;

  // Skewed offset distribution (over request-aligned slots).
  const std::uint64_t slots_per_region = (cap_bytes - req) / req + 1;
  std::unique_ptr<ZipfGenerator> zipf;
  if (spec_.zipf_theta > 0) {
    zipf = std::make_unique<ZipfGenerator>(slots_per_region,
                                           spec_.zipf_theta);
  }
  auto random_slot = [&]() {
    return zipf ? zipf->Next(rng) : rng.UniformU64(slots_per_region);
  };
  const bool mixed = spec_.read_fraction >= 0.0;
  if (mixed) {
    ZSTOR_CHECK(spec_.read_fraction <= 1.0);
    ZSTOR_CHECK(spec_.op == Opcode::kWrite || spec_.op == Opcode::kAppend);
  }

  bool stop = false;
  while (!stop && sim_.now() < end_time_) {
    Command cmd{};
    std::uint32_t target_zone = 0;

    Opcode op_now = spec_.op;
    if (mixed && rng.UniformDouble() < spec_.read_fraction) {
      op_now = Opcode::kRead;
    }
    if (mixed && op_now == Opcode::kRead && info.zoned) {
      // Zoned mixed reads target data this worker has appended; before
      // anything exists, write instead.
      std::uint32_t z = zones[rng.UniformU64(zones.size())];
      if (fill[z] >= req) {
        std::uint64_t zslots = fill[z] / req;
        std::uint64_t off = (zipf ? zipf->Next(rng) % zslots
                                  : rng.UniformU64(zslots)) *
                            req;
        cmd = {.opcode = Opcode::kRead,
               .slba = static_cast<nvme::Lba>(z) * zone_size_lbas +
                       off / lba,
               .nlb = nlb};
        if (bucket_ != nullptr) {
          co_await bucket_->Take(static_cast<double>(req));
        }
        co_await slots.Acquire();
        if (sim_.now() >= end_time_) {
          slots.Release();
          break;
        }
        outstanding.Add();
        sim::Spawn(IssueOne(cmd, req, &slots, &outstanding));
        continue;
      }
      op_now = spec_.op;  // nothing to read yet
    }

    if (op_now == Opcode::kRead || !info.zoned) {
      // Reads (zoned or not) and conventional-namespace writes address a
      // region directly, randomly or sequentially with wraparound.
      std::uint32_t z =
          spec_.random
              ? zones[rng.UniformU64(zones.size())]
              : zones[zi++ % zones.size()];
      std::uint64_t off;
      if (spec_.random) {
        off = random_slot() * req;
      } else {
        off = next_off;
        next_off += req;
        if (next_off + req > cap_bytes) next_off = 0;
      }
      cmd = {.opcode = op_now,
             .slba = static_cast<nvme::Lba>(z) * zone_size_lbas + off / lba,
             .nlb = nlb};
    } else {
      // Writers (write or append): pick a zone with room, applying the
      // on-full policy. May need to reset (drain first) or advance.
      for (;;) {
        target_zone = spec_.random && spec_.op == Opcode::kAppend
                          ? zones[rng.UniformU64(zones.size())]
                          : zones[zi % zones.size()];
        std::uint64_t used = spec_.op == Opcode::kWrite
                                 ? next_off
                                 : fill[target_zone];
        if (used + req <= cap_bytes) break;
        if (spec_.on_full == JobSpec::OnFull::kStop) {
          stop = true;
          break;
        }
        if (spec_.on_full == JobSpec::OnFull::kAdvance) {
          ++zi;
          next_off = 0;
          if (zi >= zones.size() && spec_.op == Opcode::kWrite) {
            stop = true;  // sequential writers exhaust their zone list
            break;
          }
          if (spec_.op == Opcode::kAppend) {
            // With random zone choice, a full pool means stop.
            bool any_room = false;
            for (auto z : zones) {
              if (fill[z] + req <= cap_bytes) any_room = true;
            }
            if (!any_room) {
              stop = true;
              break;
            }
          }
          continue;
        }
        // OnFull::kReset — host-side garbage collection: drain our
        // outstanding I/O, then reset and reuse the zone.
        co_await outstanding.Wait();
        nvme::TimedCompletion tc = co_await stack_.Submit(
            {.opcode = Opcode::kZoneMgmtSend,
             .slba = static_cast<nvme::Lba>(target_zone) *
                     info.zone_size_lbas,
             .zone_action = ZoneAction::kReset});
        if (tc.completed >= start_time_ + spec_.warmup &&
            tc.completed <= end_time_) {
          result_.reset_latency.Record(tc.latency());
        }
        fill[target_zone] = 0;
        if (spec_.op == Opcode::kWrite) next_off = 0;
      }
      if (stop) break;
    }

    if (bucket_ != nullptr) {
      co_await bucket_->Take(static_cast<double>(req));
    }
    co_await slots.Acquire();
    if (sim_.now() >= end_time_) {
      slots.Release();
      break;
    }

    if (info.zoned && spec_.op == Opcode::kWrite) {
      cmd = {.opcode = Opcode::kWrite,
             .slba = static_cast<nvme::Lba>(target_zone) *
                         info.zone_size_lbas +
                     next_off / lba,
             .nlb = nlb};
      next_off += req;
    } else if (spec_.op == Opcode::kAppend) {
      cmd = {.opcode = Opcode::kAppend,
             .slba = static_cast<nvme::Lba>(target_zone) *
                     info.zone_size_lbas,
             .nlb = nlb};
      fill[target_zone] += req;
    }
    outstanding.Add();
    sim::Spawn(IssueOne(cmd, req, &slots, &outstanding));
  }
  co_await outstanding.Wait();
  join_.Done();
}

sim::Task<> Job::MgmtWorker(std::uint32_t wid) {
  const std::vector<std::uint32_t> zones = ZonesForWorker(wid);
  const nvme::NamespaceInfo& info = stack_.info();
  for (std::uint32_t z : zones) {
    if (sim_.now() >= end_time_) break;
    nvme::TimedCompletion tc = co_await stack_.Submit(
        {.opcode = Opcode::kZoneMgmtSend,
         .slba = static_cast<nvme::Lba>(z) * info.zone_size_lbas,
         .zone_action = spec_.zone_action});
    RecordCompletion(tc, 0, false);
  }
  join_.Done();
}

JobResult RunJob(sim::Simulator& s, hostif::Stack& stack, JobSpec spec) {
  Job job(s, stack, std::move(spec));
  job.Start();
  s.Run();
  ZSTOR_CHECK(job.Done());
  return job.result();
}

std::vector<JobResult> RunJobs(
    sim::Simulator& s,
    std::vector<std::pair<hostif::Stack*, JobSpec>> jobs) {
  std::vector<std::unique_ptr<Job>> running;
  running.reserve(jobs.size());
  for (auto& [stack, spec] : jobs) {
    running.push_back(std::make_unique<Job>(s, *stack, std::move(spec)));
    running.back()->Start();
  }
  s.Run();
  std::vector<JobResult> out;
  out.reserve(running.size());
  for (auto& j : running) {
    ZSTOR_CHECK(j->Done());
    out.push_back(j->result());
  }
  return out;
}

}  // namespace zstor::workload
