// fio-like job specification and results.
//
// A job is what one fio invocation expresses in the paper's experiments:
// an operation type, request size, queue depth, a worker ("thread") count,
// a set of target zones, an optional bandwidth rate limit (§III-F), a
// duration, and a warmup to exclude from statistics.
#pragma once

#include <cstdint>
#include <vector>

#include "nvme/types.h"
#include "sim/stats.h"
#include "sim/time.h"
#include "telemetry/metrics.h"

namespace zstor::workload {

struct JobSpec {
  nvme::Opcode op = nvme::Opcode::kRead;
  /// For op == kZoneMgmtSend: the management action to apply, one zone at
  /// a time over `zones` (e.g. the Fig. 7 reset thread).
  nvme::ZoneAction zone_action = nvme::ZoneAction::kNone;

  /// Random offsets (reads) / random zone selection (appends). Sequential
  /// otherwise.
  bool random = false;
  /// Skew for random offsets: 0 = uniform; in (0,1) = Zipfian with this
  /// theta (0.99 is the classic hot-spot workload).
  double zipf_theta = 0;
  /// Mixed workload (fio randrw): probability that an operation is a
  /// read; the remainder use `op` (kWrite on conventional namespaces,
  /// kWrite or kAppend on zoned). Negative = not mixed.
  double read_fraction = -1;
  std::uint64_t request_bytes = 4096;
  std::uint32_t queue_depth = 1;
  std::uint32_t workers = 1;

  /// Target zones. Empty = all zones of the namespace.
  std::vector<std::uint32_t> zones;
  /// Which of the `workers` worker ids this Job instance actually
  /// spawns; empty = all of them. Worker identity (RNG stream, zone
  /// slice, fill state) is always derived from the worker id and the
  /// full `workers` count, so a job split into shards — the parallel
  /// engine runs each device's workers inside that device's lane —
  /// issues exactly the same per-worker request streams as the
  /// unsharded job.
  std::vector<std::uint32_t> worker_ids;
  /// Split `zones` across workers (the paper's one-thread-per-zone setup
  /// for inter-zone scalability). Otherwise all workers share all zones.
  bool partition_zones = false;

  /// What a writer does when its zone runs out of capacity.
  enum class OnFull {
    kStop,     // end this worker
    kAdvance,  // move to the next zone in its set; stop when none left
    kReset,    // reset the zone and keep writing (host-side GC, §III-F)
  };
  OnFull on_full = OnFull::kAdvance;

  /// Bandwidth rate limit across the whole job; 0 = unlimited.
  double rate_bytes_per_sec = 0;

  sim::Time duration = sim::Seconds(1);
  sim::Time warmup = 0;
  sim::Time series_bin = sim::Milliseconds(100);
  std::uint64_t seed = 1;
};

struct JobResult {
  /// Latency of operations completing inside the measurement window.
  sim::LatencyHistogram latency;
  /// Per-direction split (useful for mixed jobs; writes include appends).
  sim::LatencyHistogram read_latency;
  sim::LatencyHistogram write_latency;
  std::uint64_t ops = 0;
  std::uint64_t bytes = 0;
  std::uint64_t errors = 0;
  /// Zone resets performed by writers (OnFull::kReset), with latencies.
  sim::LatencyHistogram reset_latency;
  /// Bytes completed per series bin, including warmup (Fig. 6 plots).
  sim::TimeSeries series{sim::Milliseconds(100)};
  sim::Time measured_span = 0;

  double Iops() const {
    double s = sim::ToSeconds(measured_span);
    return s > 0 ? static_cast<double>(ops) / s : 0.0;
  }
  double BytesPerSec() const {
    double s = sim::ToSeconds(measured_span);
    return s > 0 ? static_cast<double>(bytes) / s : 0.0;
  }
  double MibPerSec() const { return BytesPerSec() / (1024.0 * 1024.0); }
  double Kiops() const { return Iops() / 1000.0; }

  /// Folds another shard of the same job into this result (histograms
  /// and series are order-insensitive accumulators, so merging shards
  /// in any order reproduces the unsharded totals). Spans are aligned
  /// by construction — every shard measures the same window.
  void Merge(const JobResult& o) {
    latency.Merge(o.latency);
    read_latency.Merge(o.read_latency);
    write_latency.Merge(o.write_latency);
    reset_latency.Merge(o.reset_latency);
    ops += o.ops;
    bytes += o.bytes;
    errors += o.errors;
    series.Merge(o.series);
    if (o.measured_span > measured_span) measured_span = o.measured_span;
  }

  /// Exports counters, rates and latency histograms into the registry
  /// under the "job." prefix (the shared Describe protocol; see
  /// telemetry/metrics.h). Histograms merge, so describing several jobs
  /// into one registry aggregates them.
  void Describe(telemetry::MetricsRegistry& m) const {
    m.GetCounter("job.ops").Add(ops);
    m.GetCounter("job.bytes").Add(bytes);
    m.GetCounter("job.errors").Add(errors);
    m.GetGauge("job.iops").Set(Iops());
    m.GetGauge("job.mib_per_sec").Set(MibPerSec());
    m.GetHistogram("job.latency_ns").Merge(latency);
    m.GetHistogram("job.read_latency_ns").Merge(read_latency);
    m.GetHistogram("job.write_latency_ns").Merge(write_latency);
    m.GetHistogram("job.reset_latency_ns").Merge(reset_latency);
  }
};

}  // namespace zstor::workload
