#include "workload/ycsb.h"

#include <utility>

#include "sim/check.h"
#include "sim/rng.h"
#include "workload/zipf.h"

namespace zstor::workload {

void YcsbResult::Describe(telemetry::MetricsRegistry& m) const {
  m.GetCounter("ycsb.ops").Add(ops);
  m.GetCounter("ycsb.reads").Add(reads);
  m.GetCounter("ycsb.updates").Add(updates);
  m.GetCounter("ycsb.rmws").Add(rmws);
  m.GetCounter("ycsb.not_found").Add(not_found);
  m.GetCounter("ycsb.errors").Add(errors);
  m.GetHistogram("ycsb.read_latency_ns").Merge(read_latency);
  m.GetHistogram("ycsb.update_latency_ns").Merge(update_latency);
}

YcsbRunner::YcsbRunner(sim::Simulator& s, KvBackend& kv, YcsbSpec spec)
    : sim_(s), kv_(kv), spec_(spec) {
  ZSTOR_CHECK(spec_.record_count > 0);
  ZSTOR_CHECK(spec_.workers > 0);
  ZSTOR_CHECK(spec_.zipf_theta >= 0.0 && spec_.zipf_theta < 1.0);
}

std::uint64_t YcsbRunner::RankToKey(std::uint64_t rank) const {
  // FNV-1a over the rank's bytes, folded into the key space.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (int i = 0; i < 8; ++i) {
    h ^= (rank >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h % spec_.record_count;
}

sim::Task<> YcsbRunner::LoadWorker(std::uint64_t first, std::uint64_t count,
                                   sim::WaitGroup* wg) {
  for (std::uint64_t i = 0; i < count; ++i) {
    co_await kv_.Put(first + i, spec_.value_bytes);
  }
  wg->Done();
}

sim::Task<> YcsbRunner::Load() {
  sim::WaitGroup wg(sim_);
  const std::uint64_t per =
      (spec_.record_count + spec_.workers - 1) / spec_.workers;
  for (std::uint64_t first = 0; first < spec_.record_count; first += per) {
    const std::uint64_t count =
        std::min<std::uint64_t>(per, spec_.record_count - first);
    wg.Add();
    sim::Spawn(LoadWorker(first, count, &wg));
  }
  co_await wg.Wait();
}

sim::Task<> YcsbRunner::RunWorker(std::uint32_t worker, std::uint64_t ops,
                                  YcsbResult* out, sim::WaitGroup* wg) {
  sim::Rng rng(spec_.seed * 0x9E3779B97F4A7C15ull + worker + 1);
  // Each worker owns a generator: ZipfGenerator::Next is const but the
  // draw order must be private to keep worker streams independent.
  ZipfGenerator zipf(spec_.record_count,
                     spec_.zipf_theta > 0.0 ? spec_.zipf_theta : 0.5);
  for (std::uint64_t i = 0; i < ops; ++i) {
    const std::uint64_t rank = spec_.zipf_theta > 0.0
                                   ? zipf.Next(rng)
                                   : rng.UniformU64(spec_.record_count);
    const std::uint64_t key = RankToKey(rank);
    // Mix probabilities (YCSB core): read fraction first, remainder is
    // the mix's write-flavored op.
    double read_frac = 0.5;
    bool rmw = false;
    switch (spec_.mix) {
      case YcsbMix::kA: read_frac = 0.5; break;
      case YcsbMix::kB: read_frac = 0.95; break;
      case YcsbMix::kC: read_frac = 1.0; break;
      case YcsbMix::kF: read_frac = 0.5; rmw = true; break;
    }
    const bool is_read = rng.UniformDouble() < read_frac;
    if (is_read) {
      const sim::Time t0 = sim_.now();
      bool found = false;
      nvme::Status st = co_await kv_.Get(key, &found);
      out->read_latency.Record(sim_.now() - t0);
      out->reads++;
      if (!found) out->not_found++;
      if (st != nvme::Status::kSuccess) out->errors++;
    } else {
      const sim::Time t0 = sim_.now();
      if (rmw) {
        bool found = false;
        nvme::Status rst = co_await kv_.Get(key, &found);
        if (rst != nvme::Status::kSuccess) out->errors++;
        if (!found) out->not_found++;
        out->rmws++;
      }
      nvme::Status st = co_await kv_.Put(key, spec_.value_bytes);
      out->update_latency.Record(sim_.now() - t0);
      out->updates++;
      if (st != nvme::Status::kSuccess) out->errors++;
    }
    out->ops++;
  }
  wg->Done();
}

sim::Task<YcsbResult> YcsbRunner::Run() {
  std::vector<YcsbResult> parts(spec_.workers);
  sim::WaitGroup wg(sim_);
  const sim::Time start = sim_.now();
  const std::uint64_t per = spec_.operations / spec_.workers;
  const std::uint64_t extra = spec_.operations % spec_.workers;
  for (std::uint32_t w = 0; w < spec_.workers; ++w) {
    const std::uint64_t ops = per + (w < extra ? 1 : 0);
    if (ops == 0) continue;
    wg.Add();
    sim::Spawn(RunWorker(w, ops, &parts[w], &wg));
  }
  co_await wg.Wait();
  YcsbResult merged;
  for (YcsbResult& p : parts) {
    merged.ops += p.ops;
    merged.reads += p.reads;
    merged.updates += p.updates;
    merged.rmws += p.rmws;
    merged.not_found += p.not_found;
    merged.errors += p.errors;
    merged.read_latency.Merge(p.read_latency);
    merged.update_latency.Merge(p.update_latency);
  }
  merged.span = sim_.now() - start;
  co_return merged;
}

}  // namespace zstor::workload
