// Zipfian item generator (Gray et al., "Quickly Generating Billion-Record
// Synthetic Databases", SIGMOD '94) — the standard skewed-access model for
// storage benchmarks (YCSB uses the same construction). theta in (0,1);
// theta -> 0 approaches uniform, theta ~0.99 is the classic hot-spot
// distribution.
#pragma once

#include <cmath>
#include <cstdint>

#include "sim/check.h"
#include "sim/rng.h"

namespace zstor::workload {

class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta) : n_(n), theta_(theta) {
    ZSTOR_CHECK(n > 0);
    ZSTOR_CHECK(theta > 0.0 && theta < 1.0);
    zetan_ = Zeta(n, theta);
    double zeta2 = Zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2 / zetan_);
  }

  /// Returns a rank in [0, n); rank 0 is the hottest item.
  std::uint64_t Next(sim::Rng& rng) const {
    double u = rng.UniformDouble();
    double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    auto rank = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
  }

  std::uint64_t n() const { return n_; }

 private:
  static double Zeta(std::uint64_t n, double theta) {
    double sum = 0;
    for (std::uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  std::uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
};

}  // namespace zstor::workload
