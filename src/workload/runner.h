// The workload runner: spawns worker coroutines that drive a host stack
// according to a JobSpec and collects latency/throughput statistics.
//
// Concurrency model mirrors fio: each worker keeps `queue_depth` requests
// in flight; multiple jobs can run against the same or different stacks in
// one simulation (the Fig. 6/7 interference experiments run a write job
// and a read/reset job concurrently).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hostif/stack.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "sim/token_bucket.h"
#include "workload/job.h"

namespace zstor::workload {

/// The contiguous even zone split Job gives worker `wid` under
/// partition_zones (earlier workers take the remainder). Exposed so the
/// parallel Testbed's shard planner uses identical arithmetic when
/// deciding which device lane can host a worker.
std::vector<std::uint32_t> ZoneSlice(const std::vector<std::uint32_t>& zones,
                                     std::uint32_t workers, std::uint32_t wid);

class Job {
 public:
  Job(sim::Simulator& s, hostif::Stack& stack, JobSpec spec);
  Job(const Job&) = delete;
  Job& operator=(const Job&) = delete;

  /// Spawns the job's workers. Call once; then run the simulator.
  void Start();

  /// Ends the job early: workers stop issuing at their next loop check
  /// and drain their outstanding I/O. The measurement window closes now.
  void Stop();

  /// True when all workers have finished and drained.
  bool Done() const { return started_ && join_.count() == 0; }

  const JobResult& result() const { return result_; }
  JobResult& result() { return result_; }

 private:
  struct WorkerPlan {
    std::vector<std::uint32_t> zones;
  };

  sim::Task<> IoWorker(std::uint32_t wid);
  sim::Task<> MgmtWorker(std::uint32_t wid);
  sim::Task<> IssueOne(nvme::Command cmd, std::uint64_t bytes,
                       sim::Semaphore* slots, sim::WaitGroup* outstanding);
  void RecordCompletion(const nvme::TimedCompletion& tc,
                        std::uint64_t bytes, bool is_read);
  std::vector<std::uint32_t> ZonesForWorker(std::uint32_t wid) const;

  sim::Simulator& sim_;
  hostif::Stack& stack_;
  JobSpec spec_;
  JobResult result_;
  sim::Time start_time_ = 0;
  sim::Time end_time_ = 0;
  std::unique_ptr<sim::TokenBucket> bucket_;  // null when unlimited
  sim::WaitGroup join_;
  sim::Rng rng_;
  bool started_ = false;
};

/// Runs one job to completion on a fresh region of virtual time.
JobResult RunJob(sim::Simulator& s, hostif::Stack& stack, JobSpec spec);

/// Runs several jobs concurrently; returns their results in order.
std::vector<JobResult> RunJobs(
    sim::Simulator& s,
    std::vector<std::pair<hostif::Stack*, JobSpec>> jobs);

}  // namespace zstor::workload
