#include "workload/verifier.h"

#include <algorithm>

#include "sim/check.h"
#include "sim/rng.h"
#include "sim/sync.h"

namespace zstor::workload {

using nvme::Command;
using nvme::Opcode;
using nvme::Status;

IntegrityVerifier::IntegrityVerifier(sim::Simulator& s, hostif::Stack& stack,
                                     Options opt)
    : sim_(s),
      stack_(stack),
      opt_(opt),
      lba_bytes_(stack.info().format.lba_bytes) {
  ZSTOR_CHECK(opt_.lbas_per_io > 0);
  ZSTOR_CHECK(opt_.concurrency > 0);
}

void IntegrityVerifier::RecordWrite(nvme::Lba lba, std::uint32_t nlb,
                                    std::uint64_t tag_base) {
  const std::uint64_t epoch = Epoch();
  for (std::uint32_t i = 0; i < nlb; ++i) {
    Entry& e = ledger_[lba + i];
    if (e.expected != 0) {
      // Overwrite: the previous acknowledged version is a legal rollback
      // target until a flush certifies the new one.
      e.history.push_back(e.expected);
    }
    e.expected = tag_base + i;
    e.flushed = false;
    e.epoch = epoch;
  }
}

// ------------------------------------------------------------ zoned fill

sim::Task<> IntegrityVerifier::FillWorker(std::vector<std::uint32_t> zones,
                                          std::uint64_t bytes_per_zone,
                                          sim::WaitGroup* wg) {
  const std::uint64_t zsize = stack_.info().zone_size_lbas;
  const std::uint64_t io_bytes =
      static_cast<std::uint64_t>(opt_.lbas_per_io) * lba_bytes_;
  // Round-robin across this worker's zones, one in-flight append total
  // (and therefore at most one per zone — the replay-dedupe discipline).
  std::vector<std::uint64_t> filled(zones.size(), 0);
  for (bool progress = true; progress;) {
    progress = false;
    for (std::size_t i = 0; i < zones.size(); ++i) {
      if (filled[i] + io_bytes > bytes_per_zone) continue;
      Command cmd;
      cmd.opcode = Opcode::kAppend;
      cmd.slba = static_cast<nvme::Lba>(zones[i]) * zsize;
      cmd.nlb = opt_.lbas_per_io;
      cmd.payload_tag = TakeTagBase(cmd.nlb);
      auto tc = co_await stack_.Submit(cmd);
      if (tc.completion.ok()) {
        wstats_.writes_acked++;
        filled[i] += io_bytes;
        RecordWrite(tc.completion.result_lba, cmd.nlb, cmd.payload_tag);
        progress = true;
      } else if (tc.completion.status == Status::kZoneIsFull ||
                 tc.completion.status == Status::kZoneIsReadOnly ||
                 tc.completion.status == Status::kZoneIsOffline) {
        filled[i] = bytes_per_zone;  // zone is done for this phase
      } else {
        // Retry budget exhausted (e.g. died inside an outage): the append
        // may or may not be durable; the ledger never saw it, so a
        // surviving copy is simply an unreferenced orphan.
        wstats_.write_failures++;
        filled[i] = bytes_per_zone;
      }
    }
  }
  wg->Done();
}

sim::Task<> IntegrityVerifier::FillZones(std::uint32_t first_zone,
                                         std::uint32_t zone_count,
                                         double utilization) {
  ZSTOR_CHECK(stack_.info().zoned);
  ZSTOR_CHECK(utilization > 0.0 && utilization <= 1.0);
  const std::uint64_t cap_bytes =
      stack_.info().zone_cap_lbas * static_cast<std::uint64_t>(lba_bytes_);
  const std::uint64_t io_bytes =
      static_cast<std::uint64_t>(opt_.lbas_per_io) * lba_bytes_;
  std::uint64_t target =
      static_cast<std::uint64_t>(static_cast<double>(cap_bytes) *
                                 utilization);
  target -= target % io_bytes;  // whole commands only
  const std::uint32_t workers =
      std::min(opt_.concurrency, std::max(1u, zone_count));
  sim::WaitGroup wg(sim_);
  for (std::uint32_t w = 0; w < workers; ++w) {
    std::vector<std::uint32_t> zones;
    for (std::uint32_t z = w; z < zone_count; z += workers) {
      zones.push_back(first_zone + z);
    }
    if (zones.empty()) continue;
    wg.Add();
    sim::Spawn(FillWorker(std::move(zones), target, &wg));
  }
  co_await wg.Wait();
}

// ----------------------------------------------------- conventional fill

sim::Task<> IntegrityVerifier::WriteWorker(nvme::Lba slice_first,
                                           std::uint64_t slice_ios,
                                           std::uint64_t io_count,
                                           std::uint64_t seed,
                                           sim::WaitGroup* wg) {
  sim::Rng rng(seed);
  for (std::uint64_t n = 0; n < io_count; ++n) {
    const std::uint64_t slot = rng.UniformU64(slice_ios);
    Command cmd;
    cmd.opcode = Opcode::kWrite;
    cmd.slba = slice_first + slot * opt_.lbas_per_io;
    cmd.nlb = opt_.lbas_per_io;
    cmd.payload_tag = TakeTagBase(cmd.nlb);
    auto tc = co_await stack_.Submit(cmd);
    if (tc.completion.ok()) {
      wstats_.writes_acked++;
      RecordWrite(cmd.slba, cmd.nlb, cmd.payload_tag);
    } else {
      wstats_.write_failures++;
    }
  }
  wg->Done();
}

sim::Task<> IntegrityVerifier::WriteRegion(nvme::Lba first_lba,
                                           std::uint64_t lba_span,
                                           std::uint64_t io_count) {
  const std::uint64_t total_ios = lba_span / opt_.lbas_per_io;
  ZSTOR_CHECK_MSG(total_ios >= opt_.concurrency,
                  "region too small for the worker count");
  const std::uint32_t workers = opt_.concurrency;
  const std::uint64_t ios_per_slice = total_ios / workers;
  sim::WaitGroup wg(sim_);
  for (std::uint32_t w = 0; w < workers; ++w) {
    const nvme::Lba slice_first =
        first_lba + static_cast<nvme::Lba>(w) * ios_per_slice *
                        opt_.lbas_per_io;
    const std::uint64_t quota =
        io_count / workers + (w < io_count % workers ? 1 : 0);
    if (quota == 0) continue;
    wg.Add();
    sim::Spawn(
        WriteWorker(slice_first, ios_per_slice, quota, opt_.seed + w, &wg));
  }
  co_await wg.Wait();
}

// -------------------------------------------------------- flush & verify

sim::Task<bool> IntegrityVerifier::Flush() {
  Command cmd;
  cmd.opcode = Opcode::kFlush;
  auto tc = co_await stack_.Submit(cmd);
  if (!tc.completion.ok()) {
    wstats_.flush_failures++;
    co_return false;
  }
  wstats_.flushes_acked++;
  // The flush certifies durability only for writes acknowledged in the
  // same crash epoch — anything older was already rolled back by the
  // intervening power loss, however hard this flush tries.
  const std::uint64_t epoch = Epoch();
  for (auto& [lba, e] : ledger_) {
    if (!e.flushed && e.epoch == epoch) {
      e.flushed = true;
      e.history.clear();
    }
  }
  co_return true;
}

sim::Task<IntegrityVerifier::Report> IntegrityVerifier::VerifyAll() {
  Report rep;
  auto it = ledger_.begin();
  while (it != ledger_.end()) {
    // Coalesce contiguous ledger entries into one ranged read.
    const nvme::Lba start = it->first;
    std::vector<const Entry*> run;
    nvme::Lba next = start;
    while (it != ledger_.end() && it->first == next &&
           run.size() < 64) {
      run.push_back(&it->second);
      ++next;
      ++it;
    }
    Command cmd;
    cmd.opcode = Opcode::kRead;
    cmd.slba = start;
    cmd.nlb = static_cast<std::uint32_t>(run.size());
    cmd.payload_tag = 1;  // any nonzero value requests tag readback
    auto tc = co_await stack_.Submit(cmd);
    if (!tc.completion.ok() ||
        tc.completion.payload_tags.size() != run.size()) {
      rep.read_errors++;
      continue;
    }
    for (std::size_t i = 0; i < run.size(); ++i) {
      const Entry& e = *run[i];
      const std::uint64_t got = tc.completion.payload_tags[i];
      rep.lbas_checked++;
      rep.bytes_verified += lba_bytes_;
      if (got == e.expected) {
        rep.exact++;
      } else if (e.flushed) {
        rep.silent_corruptions++;  // durable data changed: never legal
      } else if (got == 0) {
        rep.lost_unflushed++;
      } else if (std::find(e.history.begin(), e.history.end(), got) !=
                 e.history.end()) {
        rep.stale_unflushed++;
      } else {
        rep.silent_corruptions++;
      }
    }
  }
  co_return rep;
}

}  // namespace zstor::workload
