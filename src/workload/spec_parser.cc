#include "workload/spec_parser.h"

#include <charconv>
#include <cstdint>
#include <vector>

namespace zstor::workload {

namespace {

bool ParseU64(std::string_view v, std::uint64_t* out) {
  auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), *out);
  return ec == std::errc{} && p == v.data() + v.size();
}

bool ParseDouble(std::string_view v, double* out) {
  // from_chars for double is flaky across stdlibs; strtod via a buffer.
  std::string buf(v);
  char* end = nullptr;
  *out = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size() && !buf.empty();
}

/// Bytes with optional k/m/g suffix (binary units, fio-style).
bool ParseBytes(std::string_view v, std::uint64_t* out) {
  std::uint64_t mult = 1;
  if (!v.empty()) {
    char c = static_cast<char>(std::tolower(v.back()));
    if (c == 'k') mult = 1024ull;
    if (c == 'm') mult = 1024ull * 1024;
    if (c == 'g') mult = 1024ull * 1024 * 1024;
    if (mult != 1) v.remove_suffix(1);
  }
  std::uint64_t n = 0;
  if (!ParseU64(v, &n)) return false;
  *out = n * mult;
  return true;
}

/// Durations: "500ms", "2s", "100us", bare = nanoseconds.
bool ParseTime(std::string_view v, sim::Time* out) {
  double mult = 1;
  if (v.size() >= 2 && v.substr(v.size() - 2) == "ms") {
    mult = 1e6;
    v.remove_suffix(2);
  } else if (v.size() >= 2 && v.substr(v.size() - 2) == "us") {
    mult = 1e3;
    v.remove_suffix(2);
  } else if (!v.empty() && v.back() == 's') {
    mult = 1e9;
    v.remove_suffix(1);
  }
  double n = 0;
  if (!ParseDouble(v, &n) || n < 0) return false;
  *out = static_cast<sim::Time>(n * mult);
  return true;
}

/// Zone lists: "0-3,7,9-11".
bool ParseZones(std::string_view v, std::vector<std::uint32_t>* out) {
  while (!v.empty()) {
    std::size_t comma = v.find(',');
    std::string_view item = v.substr(0, comma);
    v = comma == std::string_view::npos ? std::string_view{}
                                        : v.substr(comma + 1);
    std::size_t dash = item.find('-');
    std::uint64_t lo = 0, hi = 0;
    if (dash == std::string_view::npos) {
      if (!ParseU64(item, &lo)) return false;
      hi = lo;
    } else {
      if (!ParseU64(item.substr(0, dash), &lo) ||
          !ParseU64(item.substr(dash + 1), &hi) || hi < lo) {
        return false;
      }
    }
    for (std::uint64_t z = lo; z <= hi; ++z) {
      out->push_back(static_cast<std::uint32_t>(z));
    }
  }
  return !out->empty();
}

}  // namespace

ParseResult ParseJobSpec(std::string_view text) {
  ParseResult r;
  JobSpec& s = r.spec;
  auto fail = [&](std::string_view token, std::string_view why) {
    r.ok = false;
    r.error = std::string(why) + ": '" + std::string(token) + "'";
    return r;
  };

  std::string_view rest = text;
  while (!rest.empty()) {
    // Split the next whitespace-delimited token.
    std::size_t start = rest.find_first_not_of(" \t\n");
    if (start == std::string_view::npos) break;
    rest = rest.substr(start);
    std::size_t end = rest.find_first_of(" \t\n");
    std::string_view tok = rest.substr(0, end);
    rest = end == std::string_view::npos ? std::string_view{}
                                         : rest.substr(end);

    std::size_t eq = tok.find('=');
    if (eq == std::string_view::npos) return fail(tok, "missing '='");
    std::string_view key = tok.substr(0, eq);
    std::string_view val = tok.substr(eq + 1);
    if (val.empty()) return fail(tok, "empty value");

    if (key == "op") {
      if (val == "read") {
        s.op = nvme::Opcode::kRead;
      } else if (val == "write") {
        s.op = nvme::Opcode::kWrite;
      } else if (val == "append") {
        s.op = nvme::Opcode::kAppend;
      } else if (val == "reset" || val == "finish" || val == "open" ||
                 val == "close") {
        s.op = nvme::Opcode::kZoneMgmtSend;
        s.zone_action = val == "reset"    ? nvme::ZoneAction::kReset
                        : val == "finish" ? nvme::ZoneAction::kFinish
                        : val == "open"   ? nvme::ZoneAction::kOpen
                                          : nvme::ZoneAction::kClose;
      } else {
        return fail(tok, "unknown op");
      }
    } else if (key == "bs") {
      if (!ParseBytes(val, &s.request_bytes) || s.request_bytes == 0) {
        return fail(tok, "bad block size");
      }
    } else if (key == "qd") {
      std::uint64_t n;
      if (!ParseU64(val, &n) || n == 0) return fail(tok, "bad qd");
      s.queue_depth = static_cast<std::uint32_t>(n);
    } else if (key == "workers") {
      std::uint64_t n;
      if (!ParseU64(val, &n) || n == 0) return fail(tok, "bad workers");
      s.workers = static_cast<std::uint32_t>(n);
    } else if (key == "zones") {
      s.zones.clear();
      if (!ParseZones(val, &s.zones)) return fail(tok, "bad zone list");
    } else if (key == "partition") {
      s.partition_zones = val == "1";
      if (val != "0" && val != "1") return fail(tok, "expected 0|1");
    } else if (key == "random") {
      s.random = val == "1";
      if (val != "0" && val != "1") return fail(tok, "expected 0|1");
    } else if (key == "zipf") {
      if (!ParseDouble(val, &s.zipf_theta) || s.zipf_theta <= 0 ||
          s.zipf_theta >= 1) {
        return fail(tok, "zipf theta must be in (0,1)");
      }
    } else if (key == "rwmix") {
      double pct;
      if (!ParseDouble(val, &pct) || pct < 0 || pct > 100) {
        return fail(tok, "rwmix must be 0..100");
      }
      s.read_fraction = pct / 100.0;
    } else if (key == "rate") {
      std::uint64_t bytes;
      if (!ParseBytes(val, &bytes) || bytes == 0) {
        return fail(tok, "bad rate");
      }
      s.rate_bytes_per_sec = static_cast<double>(bytes);
    } else if (key == "duration") {
      if (!ParseTime(val, &s.duration)) return fail(tok, "bad duration");
    } else if (key == "warmup") {
      if (!ParseTime(val, &s.warmup)) return fail(tok, "bad warmup");
    } else if (key == "on_full") {
      if (val == "stop") {
        s.on_full = JobSpec::OnFull::kStop;
      } else if (val == "advance") {
        s.on_full = JobSpec::OnFull::kAdvance;
      } else if (val == "reset") {
        s.on_full = JobSpec::OnFull::kReset;
      } else {
        return fail(tok, "unknown on_full");
      }
    } else if (key == "seed") {
      if (!ParseU64(val, &s.seed)) return fail(tok, "bad seed");
    } else {
      return fail(tok, "unknown key");
    }
  }
  if (s.warmup > s.duration) {
    return fail("warmup", "warmup exceeds duration");
  }
  r.ok = true;
  return r;
}

}  // namespace zstor::workload
