// IntegrityVerifier: end-to-end data-integrity checking for crash
// experiments (DESIGN.md §11).
//
// The simulator carries no payload bytes, so integrity rides on the
// payload-tag channel (nvme::Command::payload_tag): every write/append
// stamps each of its LBAs with a unique, self-describing tag, and a
// readback with a nonzero tag requests the stored tags back. The
// verifier keeps a host-side ledger of what each LBA must hold and — in
// particular after a power-loss crash and device recovery — re-reads
// everything and classifies each LBA:
//
//   exact            the newest acknowledged write survived;
//   lost (tag 0)     an unflushed write the crash legitimately dropped;
//   stale            an unflushed overwrite rolled back to an older
//                    acknowledged version (conv journal revert);
//   SILENT CORRUPTION anything else — including any mismatch on an LBA
//                    that a successful flush made durable. This is the
//                    failure the crash tests exist to catch.
//
// Durability model: a write acknowledgment alone promises nothing across
// power loss (both device models buffer write-back). A successful flush
// promises durability for every write acknowledged before it — unless a
// crash happened in between, which is why the verifier samples the
// optional `crash_epoch` probe at write- and flush-completion time and
// only upgrades entries whose epoch did not change.
//
// Determinism: all randomness comes from sim::Rng seeded by the caller;
// two runs with the same seed and fault plan produce identical ledgers
// and identical reports.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "hostif/stack.h"
#include "nvme/types.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace zstor::workload {

class IntegrityVerifier {
 public:
  struct Options {
    /// Blocks per write/append/read command. For ZNS keep this a multiple
    /// of the NAND page (page_bytes / lba_bytes): the device's durable
    /// prefix is page-granular, so sub-page flushed tails would be
    /// misreported as corruption.
    std::uint32_t lbas_per_io = 4;
    /// Concurrent worker coroutines per phase. Workers own disjoint LBA
    /// slices (conventional) / zone subsets (zoned), preserving the
    /// single-writer discipline the ledger and append-replay need.
    std::uint32_t concurrency = 4;
    /// Seed for all verifier randomness (overwrite offsets).
    std::uint64_t seed = 0x5EED'0F'1E55ull;
    /// Returns the device's crash count (or power epoch). Sampled at
    /// write- and flush-completion; a flush only certifies entries whose
    /// sample matches. Leave unset when no crashes are injected.
    std::function<std::uint64_t()> crash_epoch;
  };

  struct Report {
    std::uint64_t lbas_checked = 0;
    std::uint64_t bytes_verified = 0;    // bytes re-read and compared
    std::uint64_t exact = 0;             // newest acknowledged tag
    std::uint64_t lost_unflushed = 0;    // tag 0, write never flushed
    std::uint64_t stale_unflushed = 0;   // older acknowledged, unflushed
    std::uint64_t silent_corruptions = 0;
    std::uint64_t read_errors = 0;       // reads that failed outright
    bool ok() const { return silent_corruptions == 0 && read_errors == 0; }
  };

  struct WriteStats {
    std::uint64_t writes_acked = 0;
    std::uint64_t write_failures = 0;   // surfaced errors (budget spent)
    std::uint64_t flushes_acked = 0;
    std::uint64_t flush_failures = 0;
  };

  IntegrityVerifier(sim::Simulator& s, hostif::Stack& stack, Options opt);

  /// Zoned phase: appends into zones [first_zone, first_zone+count) until
  /// each holds `utilization` of its capacity. Workers rotate through
  /// disjoint zone subsets with at most one append in flight per zone.
  sim::Task<> FillZones(std::uint32_t first_zone, std::uint32_t zone_count,
                        double utilization);

  /// Conventional phase: `io_count` writes at random io-aligned offsets
  /// inside [first_lba, first_lba + lba_span), each worker in its own
  /// slice. Overwrites arise naturally once a slice has been covered.
  sim::Task<> WriteRegion(nvme::Lba first_lba, std::uint64_t lba_span,
                          std::uint64_t io_count);

  /// Issues a device flush; on success upgrades every ledger entry whose
  /// write completed in the same crash epoch to "durable".
  sim::Task<bool> Flush();

  /// Re-reads every ledger entry and classifies it (see file comment).
  sim::Task<Report> VerifyAll();

  const WriteStats& write_stats() const { return wstats_; }
  std::size_t ledger_size() const { return ledger_.size(); }

 private:
  struct Entry {
    std::uint64_t expected = 0;   // newest acknowledged tag
    /// Older acknowledged tags a crash may legally roll back to (cleared
    /// when a flush certifies `expected`).
    std::vector<std::uint64_t> history;
    bool flushed = false;
    std::uint64_t epoch = 0;      // crash_epoch() at acknowledgment
  };

  std::uint64_t Epoch() const {
    return opt_.crash_epoch ? opt_.crash_epoch() : 0;
  }
  std::uint64_t TakeTagBase(std::uint32_t nlb) {
    std::uint64_t t = next_tag_;
    next_tag_ += nlb;
    return t;
  }
  void RecordWrite(nvme::Lba lba, std::uint32_t nlb, std::uint64_t tag_base);
  // Phase workers (spawned; they signal `wg` when done — free coroutine
  // frames own their parameters, per the capture rules in DESIGN.md).
  sim::Task<> FillWorker(std::vector<std::uint32_t> zones,
                         std::uint64_t bytes_per_zone, sim::WaitGroup* wg);
  sim::Task<> WriteWorker(nvme::Lba slice_first, std::uint64_t slice_ios,
                          std::uint64_t io_count, std::uint64_t seed,
                          sim::WaitGroup* wg);

  sim::Simulator& sim_;
  hostif::Stack& stack_;
  Options opt_;
  std::uint32_t lba_bytes_;
  std::uint64_t next_tag_ = 1;  // 0 means "untagged" on the wire
  /// Ordered so VerifyAll coalesces contiguous LBAs into ranged reads.
  std::map<nvme::Lba, Entry> ledger_;
  WriteStats wstats_;
};

}  // namespace zstor::workload
